package prof

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

// writeSampleTrace writes a small hand-built DAG through the real
// Writer and returns the file path.
//
//	seq 1 (root, t=10, site-a) ─┬─ seq 2 (t=30, site-a)
//	                            └─ seq 3 (t=20, site-b) ── seq 4 (t=100, site-b)
//	seq 5 (root, t=50, untagged)
func writeSampleTrace(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "provenance.trace")
	w, err := CreateTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	w.DefTag(1, "site-a")
	w.DefTag(2, "site-b")
	fnA := sim.CallbackPC(fnAlpha, nil)
	fnB := sim.CallbackPC(fnBeta, nil)
	for _, r := range []sim.ProvRecord{
		{Seq: 1, Parent: sim.NoProvParent, At: 10, PC: fnA, Tag: 1},
		{Seq: 2, Parent: 1, At: 30, PC: fnA, Tag: 1},
		{Seq: 3, Parent: 1, At: 20, PC: fnB, Tag: 2},
		{Seq: 4, Parent: 3, At: 100, PC: fnB, Tag: 2},
		{Seq: 5, Parent: sim.NoProvParent, At: 50, PC: fnA, Tag: 0},
	} {
		w.Record(r)
	}
	if n := w.Records(); n != 5 {
		t.Fatalf("Records() = %d, want 5", n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func fnAlpha() {}
func fnBeta()  {}

func TestRoundTrip(t *testing.T) {
	path := writeSampleTrace(t)
	tr, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 5 {
		t.Fatalf("loaded %d events, want 5", len(tr.Events))
	}
	if tr.Torn {
		t.Error("clean trace reported torn")
	}
	if tr.Events[3].Parent != 3 || tr.Events[3].At != 100 {
		t.Errorf("event 4 = %+v", tr.Events[3])
	}
	if tr.Events[0].Parent != -1 {
		t.Errorf("root parent = %d, want -1", tr.Events[0].Parent)
	}
	if got := tr.TagName(2); got != "site-b" {
		t.Errorf("TagName(2) = %q", got)
	}
	if got := tr.TagName(0); got != "(untagged)" {
		t.Errorf("TagName(0) = %q", got)
	}
	if !strings.Contains(tr.FnName(tr.Events[0].Fn), "fnAlpha") {
		t.Errorf("fn name = %q, want ...fnAlpha", tr.FnName(tr.Events[0].Fn))
	}
}

func TestWriterDeterministic(t *testing.T) {
	a, err := os.ReadFile(writeSampleTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(writeSampleTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical record streams produced different trace bytes")
	}
}

func TestTornTail(t *testing.T) {
	path := writeSampleTrace(t)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`deadbeef {"k":"ev","s":9`) // torn mid-line
	f.Close()
	tr, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Torn {
		t.Error("damaged tail not reported as torn")
	}
	if len(tr.Events) != 5 {
		t.Errorf("intact prefix lost: %d events, want 5", len(tr.Events))
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad")
	os.WriteFile(bad, []byte("hello world\n"), 0o644)
	if _, err := LoadTrace(bad); err == nil {
		t.Error("garbage file accepted")
	}
	empty := filepath.Join(dir, "empty")
	os.WriteFile(empty, nil, 0o644)
	if _, err := LoadTrace(empty); err == nil {
		t.Error("empty file accepted")
	}
}

func TestCriticalPath(t *testing.T) {
	tr, err := LoadTrace(writeSampleTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	path := tr.CriticalPath()
	want := []uint64{1, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("path length %d, want %d", len(path), len(want))
	}
	for i, s := range path {
		if s.Ev.Seq != want[i] {
			t.Errorf("path[%d].Seq = %d, want %d", i, s.Ev.Seq, want[i])
		}
	}
	deltas := []sim.Duration{10, 10, 80}
	for i, s := range path {
		if s.Delta != deltas[i] {
			t.Errorf("path[%d].Delta = %v, want %v", i, s.Delta, deltas[i])
		}
	}
}

func TestBlame(t *testing.T) {
	tr, err := LoadTrace(writeSampleTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	_, byTag := tr.Blame(tr.CriticalPath())
	if len(byTag) != 2 {
		t.Fatalf("byTag has %d entries, want 2", len(byTag))
	}
	if byTag[0].Name != "site-b" || byTag[0].Ns != 90 || byTag[0].Steps != 2 {
		t.Errorf("byTag[0] = %+v, want site-b 90ns over 2 steps", byTag[0])
	}
	if byTag[1].Name != "site-a" || byTag[1].Ns != 10 {
		t.Errorf("byTag[1] = %+v, want site-a 10ns", byTag[1])
	}
	if byTag[0].Frac != 0.9 {
		t.Errorf("site-b frac = %v, want 0.9", byTag[0].Frac)
	}
}

func TestFanOut(t *testing.T) {
	tr, err := LoadTrace(writeSampleTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	fo := tr.FanOut()
	if fo.Events != 5 || fo.Roots != 2 {
		t.Errorf("events/roots = %d/%d, want 5/2", fo.Events, fo.Roots)
	}
	if fo.MaxOut != 2 || fo.MaxSeq != 1 {
		t.Errorf("max fan-out = %d at seq %d, want 2 at seq 1", fo.MaxOut, fo.MaxSeq)
	}
	if fo.MeanOut != 0.6 {
		t.Errorf("mean fan-out = %v, want 0.6", fo.MeanOut)
	}
}

func TestWriteReportSmoke(t *testing.T) {
	tr, err := LoadTrace(writeSampleTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteReport(&b, tr, 10); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"provenance trace: 5 events, 2 roots",
		"critical path: 3 events, ends at seq 4",
		"site-b", "fnBeta", "fan-out: mean 0.600, max 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteChromeCriticalPath(t *testing.T) {
	tr, err := LoadTrace(writeSampleTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := WriteChromeCriticalPath(&b, tr); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(b.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, b.String())
	}
	slices := 0
	for _, e := range events {
		if e["ph"] == "X" {
			slices++
		}
	}
	if slices != 3 {
		t.Errorf("%d X slices, want 3 (one per path hop)", slices)
	}
}

// TestTagScheduler checks the wrapper tags every schedule flavor and
// restores the untagged state, including ticker reschedules.
func TestTagScheduler(t *testing.T) {
	k := sim.NewKernel()
	var tags []int32
	k.SetProvenance(func(r sim.ProvRecord) { tags = append(tags, r.Tag) })

	s := TagScheduler(k, 3)
	if _, same := s.(*sim.Kernel); same {
		t.Fatal("kernel not wrapped")
	}
	s.After(1, func() {})
	s.At(2, func() {})
	s.AtArg(3, func(any) {}, nil)
	s.AfterArg(4, func(any) {}, nil)
	k.After(5, func() {}) // direct: untagged
	tick := s.Every(10, func(sim.Time) {})
	k.RunUntil(25)
	tick.Stop()

	want := []int32{3, 3, 3, 3, 0, 3 /* ticker arm */, 3, 3 /* reschedules */}
	if len(tags) != len(want) {
		t.Fatalf("tags = %v, want %v", tags, want)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("tags = %v, want %v", tags, want)
		}
	}

	// tag 0 and non-tagging schedulers pass through unchanged.
	if TagScheduler(k, 0) != sim.Scheduler(k) {
		t.Error("tag 0 should return the scheduler unchanged")
	}
}
