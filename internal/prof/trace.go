package prof

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"strconv"

	"repro/internal/sim"
)

// Event is one loaded provenance record: a node of the causal DAG.
type Event struct {
	Seq    uint64
	Parent int64 // -1 for roots
	At     sim.Time
	Fn     int32
	Tag    int32
}

// Trace is a loaded provenance trace.
type Trace struct {
	FnNames  []string
	TagNames map[int32]string
	Events   []Event
	// Torn reports that a damaged trailing frame was truncated (the
	// writer died mid-line); everything before it is intact.
	Torn bool

	bySeq map[uint64]int // seq → Events index
}

// lineRec is the union of every frame body shape.
type lineRec struct {
	K      string `json:"k"`
	Format string `json:"format"`
	V      int    `json:"v"`
	ID     int32  `json:"id"`
	Name   string `json:"name"`
	S      uint64 `json:"s"`
	P      int64  `json:"p"`
	T      int64  `json:"t"`
	F      int32  `json:"f"`
	G      int32  `json:"g"`
}

// parseFrame validates one CRC-framed line and unmarshals its body.
func parseFrame(line []byte, rec *lineRec) bool {
	if len(line) < 10 || line[8] != ' ' {
		return false
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return false
	}
	body := line[9:]
	if crc32.ChecksumIEEE(body) != uint32(want) {
		return false
	}
	return json.Unmarshal(body, rec) == nil
}

// LoadTrace reads a provenance trace, tolerating a torn tail.
func LoadTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	defer f.Close()

	t := &Trace{TagNames: make(map[int32]string), bySeq: make(map[uint64]int)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	first := true
	for sc.Scan() {
		var rec lineRec
		if !parseFrame(sc.Bytes(), &rec) {
			if first {
				return nil, fmt.Errorf("prof: %s: not a provenance trace", path)
			}
			t.Torn = true
			break
		}
		if first {
			if rec.K != "hdr" || rec.Format != TraceFormat {
				return nil, fmt.Errorf("prof: %s: not a provenance trace (header %q)", path, rec.Format)
			}
			if rec.V != TraceVersion {
				return nil, fmt.Errorf("prof: %s: unsupported trace version %d", path, rec.V)
			}
			first = false
			continue
		}
		switch rec.K {
		case "fn":
			for int(rec.ID) >= len(t.FnNames) {
				t.FnNames = append(t.FnNames, "")
			}
			t.FnNames[rec.ID] = rec.Name
		case "tag":
			t.TagNames[rec.ID] = rec.Name
		case "ev":
			t.bySeq[rec.S] = len(t.Events)
			t.Events = append(t.Events, Event{
				Seq: rec.S, Parent: rec.P, At: sim.Time(rec.T),
				Fn: rec.F, Tag: rec.G,
			})
		}
	}
	if first {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		return nil, fmt.Errorf("prof: %s: empty trace", path)
	}
	return t, nil
}

// FnName returns the interned name for a callback id.
func (t *Trace) FnName(id int32) string {
	if int(id) < len(t.FnNames) && t.FnNames[id] != "" {
		return t.FnNames[id]
	}
	return fmt.Sprintf("fn#%d", id)
}

// TagName returns the registered name for a tag (site) id.
func (t *Trace) TagName(id int32) string {
	if id == 0 {
		return "(untagged)"
	}
	if n, ok := t.TagNames[id]; ok {
		return n
	}
	return fmt.Sprintf("tag#%d", id)
}

// Span reports the last event timestamp in the trace.
func (t *Trace) Span() sim.Time {
	var end sim.Time
	for i := range t.Events {
		if t.Events[i].At > end {
			end = t.Events[i].At
		}
	}
	return end
}

// PathStep is one hop on the critical path. Delta is the sim time this
// hop contributes: the event's timestamp minus its parent's (the
// scheduling latency the parent imposed), or the event's absolute
// timestamp for a root.
type PathStep struct {
	Ev    Event
	Delta sim.Duration
}

// CriticalPath walks parent pointers back from the latest event (ties
// broken by highest sequence number) and returns the chain root-first.
// In a DAG whose edges all point backward in time, this chain is the
// causal dependency path that determined the run's end time.
func (t *Trace) CriticalPath() []PathStep {
	if len(t.Events) == 0 {
		return nil
	}
	end := 0
	for i := range t.Events {
		e, b := &t.Events[i], &t.Events[end]
		if e.At > b.At || (e.At == b.At && e.Seq > b.Seq) {
			end = i
		}
	}
	var rev []PathStep
	i := end
	for {
		e := t.Events[i]
		step := PathStep{Ev: e, Delta: sim.Duration(e.At)}
		next := -1
		if e.Parent >= 0 {
			if j, ok := t.bySeq[uint64(e.Parent)]; ok {
				next = j
				step.Delta = e.At - t.Events[j].At
			}
		}
		rev = append(rev, step)
		if next < 0 {
			break
		}
		i = next
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// BlameEntry aggregates critical-path time against one name (a
// callback or a tag/site).
type BlameEntry struct {
	Name  string
	Steps int
	Ns    int64
	// Frac is Ns over the critical path's end time.
	Frac float64
}

// Blame attributes each critical-path hop's delta to the scheduled
// event's callback and tag, returning both tables sorted by descending
// time (ties by name, for deterministic output).
func (t *Trace) Blame(path []PathStep) (byFn, byTag []BlameEntry) {
	if len(path) == 0 {
		return nil, nil
	}
	end := int64(path[len(path)-1].Ev.At)
	fn := make(map[string]*BlameEntry)
	tag := make(map[string]*BlameEntry)
	add := func(m map[string]*BlameEntry, name string, d sim.Duration) {
		e, ok := m[name]
		if !ok {
			e = &BlameEntry{Name: name}
			m[name] = e
		}
		e.Steps++
		e.Ns += int64(d)
	}
	for _, s := range path {
		add(fn, t.FnName(s.Ev.Fn), s.Delta)
		add(tag, t.TagName(s.Ev.Tag), s.Delta)
	}
	flatten := func(m map[string]*BlameEntry) []BlameEntry {
		out := make([]BlameEntry, 0, len(m))
		for _, e := range m {
			if end > 0 {
				e.Frac = float64(e.Ns) / float64(end)
			}
			out = append(out, *e)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Ns != out[j].Ns {
				return out[i].Ns > out[j].Ns
			}
			return out[i].Name < out[j].Name
		})
		return out
	}
	return flatten(fn), flatten(tag)
}

// FanOutStats summarizes the DAG's branching structure.
type FanOutStats struct {
	Events int
	Roots  int
	// MaxOut is the largest number of events scheduled by a single
	// event handler; MaxSeq/MaxFn identify it.
	MaxOut int
	MaxSeq uint64
	MaxFn  string
	// MeanOut is edges per event (== (Events-Roots)/Events).
	MeanOut float64
}

// FanOut computes branching statistics over the whole DAG.
func (t *Trace) FanOut() FanOutStats {
	st := FanOutStats{Events: len(t.Events)}
	if st.Events == 0 {
		return st
	}
	out := make([]int, len(t.Events))
	for i := range t.Events {
		e := &t.Events[i]
		if e.Parent < 0 {
			st.Roots++
			continue
		}
		if j, ok := t.bySeq[uint64(e.Parent)]; ok {
			out[j]++
		} else {
			st.Roots++ // parent predates the hook; treat as root
		}
	}
	best := 0
	st.MaxOut = out[0]
	for i, n := range out {
		if n > st.MaxOut { // ties keep the earliest seq (events are in seq order)
			st.MaxOut, best = n, i
		}
	}
	st.MaxSeq = t.Events[best].Seq
	st.MaxFn = t.FnName(t.Events[best].Fn)
	st.MeanOut = float64(st.Events-st.Roots) / float64(st.Events)
	return st
}
