package prof

import "repro/internal/sim"

// tagSetter is the capability both the serial kernel and a lanes.Lane
// expose for provenance domain tagging.
type tagSetter interface {
	SetProvTag(tag int32)
}

// TagScheduler wraps a scheduler so every schedule call made through it
// is provenance-tagged with tag — the campaign layer wraps each site's
// scheduler this way, attributing the site's events to it in the causal
// DAG. The wrapper sets the tag around each delegated call and restores
// the untagged state, so schedulers shared across components never leak
// a tag. If s cannot tag (or tag is 0), s is returned unchanged.
func TagScheduler(s sim.Scheduler, tag int32) sim.Scheduler {
	ts, ok := s.(tagSetter)
	if !ok || tag == 0 {
		return s
	}
	return &taggedScheduler{s: s, ts: ts, tag: tag}
}

type taggedScheduler struct {
	s   sim.Scheduler
	ts  tagSetter
	tag int32
}

func (t *taggedScheduler) Now() sim.Time { return t.s.Now() }

func (t *taggedScheduler) At(at sim.Time, fn func()) sim.Handle {
	t.ts.SetProvTag(t.tag)
	h := t.s.At(at, fn)
	t.ts.SetProvTag(0)
	return h
}

func (t *taggedScheduler) AtArg(at sim.Time, fn func(any), arg any) sim.Handle {
	t.ts.SetProvTag(t.tag)
	h := t.s.AtArg(at, fn, arg)
	t.ts.SetProvTag(0)
	return h
}

func (t *taggedScheduler) After(d sim.Duration, fn func()) sim.Handle {
	t.ts.SetProvTag(t.tag)
	h := t.s.After(d, fn)
	t.ts.SetProvTag(0)
	return h
}

func (t *taggedScheduler) AfterArg(d sim.Duration, fn func(any), arg any) sim.Handle {
	t.ts.SetProvTag(t.tag)
	h := t.s.AfterArg(d, fn, arg)
	t.ts.SetProvTag(0)
	return h
}

// Every builds the ticker on the wrapper itself, so every firing's
// reschedule carries the tag too.
func (t *taggedScheduler) Every(d sim.Duration, fn func(sim.Time)) *sim.Ticker {
	return sim.NewTicker(t, d, fn)
}
