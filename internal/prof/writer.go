// Package prof is the sim plane of the profiling subsystem: it streams
// the kernel's causal event DAG (sim.ProvRecord per schedule call) to a
// CRC-framed on-disk trace and analyzes loaded traces — sim-time
// critical path, per-site/per-callback blame attribution, and fan-out
// statistics.
//
// The trace is a sim-time artifact and therefore deterministic: a
// same-seed run produces byte-identical traces serially and under
// sharded lanes at any worker count. Callback code pointers are never
// persisted — function names are interned into numbered definitions at
// write time, so the bytes are stable across processes.
//
// Framing reuses the internal/journal idiom: every line is
// "%08x %s\n" — the IEEE CRC32 of the JSON body, a space, the body.
// Readers stop at the first damaged line (torn tail after a crash).
package prof

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"

	"repro/internal/sim"
	"repro/internal/storefault"
)

// TraceFormat identifies a provenance trace header.
const (
	TraceFormat  = "patchwork-provenance"
	TraceVersion = 1
)

// Writer streams provenance records to a CRC-framed trace. Record is
// called synchronously from the simulation goroutine (it is the
// kernel's provenance hook); Flush/Stats may be called concurrently
// from an HTTP handler serving a profile download, so all state is
// mutex-guarded.
type Writer struct {
	mu     sync.Mutex
	f      storefault.File
	bw     *bufio.Writer
	fnIDs  map[uintptr]int32
	body   []byte // body scratch, reused per line
	line   []byte // framed-line scratch
	n      uint64
	closed bool
	err    error
}

// CreateTrace creates (truncating) a provenance trace file, parent
// directories included, and writes the header frame.
func CreateTrace(path string) (*Writer, error) {
	return CreateTraceFS(nil, path)
}

// CreateTraceFS is CreateTrace through an explicit filesystem seam (nil
// means the real disk) — the storage-chaos injection point.
func CreateTraceFS(fsys storefault.FS, path string) (*Writer, error) {
	fsys = storefault.Or(fsys)
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	w := NewWriter(f)
	w.f = f
	return w, nil
}

// NewWriter streams a trace to an arbitrary writer (tests, in-memory
// buffers). The header frame is written immediately.
func NewWriter(out io.Writer) *Writer {
	w := &Writer{bw: bufio.NewWriterSize(out, 1<<16), fnIDs: make(map[uintptr]int32)}
	w.emit([]byte(fmt.Sprintf(`{"k":"hdr","format":%q,"v":%d}`, TraceFormat, TraceVersion)))
	return w
}

// emit frames body with its CRC and appends the line. Callers hold mu
// (or have exclusive access during construction).
func (w *Writer) emit(body []byte) {
	if w.err != nil {
		return
	}
	crc := crc32.ChecksumIEEE(body)
	const hexdigits = "0123456789abcdef"
	w.line = w.line[:0]
	for shift := 28; shift >= 0; shift -= 4 {
		w.line = append(w.line, hexdigits[(crc>>uint(shift))&0xf])
	}
	w.line = append(w.line, ' ')
	w.line = append(w.line, body...)
	w.line = append(w.line, '\n')
	if _, err := w.bw.Write(w.line); err != nil {
		w.err = err
	}
}

// DefTag records a tag definition (e.g. site id → site name) so reports
// can name provenance domains. Call before the run starts, in a
// deterministic order.
func (w *Writer) DefTag(id int32, name string) {
	quoted, _ := json.Marshal(name)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.emit([]byte(fmt.Sprintf(`{"k":"tag","id":%d,"name":%s}`, id, quoted)))
}

// fnID interns the callback's code pointer, emitting a definition frame
// on first use. Name resolution happens here — once per distinct
// callback, not per event. Callers hold mu.
func (w *Writer) fnID(pc uintptr) int32 {
	if id, ok := w.fnIDs[pc]; ok {
		return id
	}
	id := int32(len(w.fnIDs))
	w.fnIDs[pc] = id
	name := "unknown"
	if f := runtime.FuncForPC(pc); f != nil {
		name = f.Name()
	}
	quoted, _ := json.Marshal(name)
	w.emit([]byte(fmt.Sprintf(`{"k":"fn","id":%d,"name":%s}`, id, quoted)))
	return id
}

// Record appends one provenance record. It is the hook to install with
// Kernel.SetProvenance.
func (w *Writer) Record(r sim.ProvRecord) {
	w.mu.Lock()
	defer w.mu.Unlock()
	id := w.fnID(r.PC)
	b := w.body[:0]
	b = append(b, `{"k":"ev","s":`...)
	b = strconv.AppendUint(b, r.Seq, 10)
	b = append(b, `,"p":`...)
	if r.Parent == sim.NoProvParent {
		b = append(b, `-1`...)
	} else {
		b = strconv.AppendUint(b, r.Parent, 10)
	}
	b = append(b, `,"t":`...)
	b = strconv.AppendInt(b, int64(r.At), 10)
	b = append(b, `,"f":`...)
	b = strconv.AppendInt(b, int64(id), 10)
	b = append(b, `,"g":`...)
	b = strconv.AppendInt(b, int64(r.Tag), 10)
	b = append(b, '}')
	w.body = b
	w.emit(b)
	w.n++
}

// Records reports how many event records have been written.
func (w *Writer) Records() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Flush drains buffered frames to the underlying writer — called by a
// live profile-download endpoint before serving the file.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Close flushes and closes the trace. Idempotent; the first error wins.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	w.closed = true
	if err := w.bw.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	if w.f != nil {
		if err := w.f.Close(); err != nil && w.err == nil {
			w.err = err
		}
		w.f = nil
	}
	return w.err
}
