package netflow

import (
	"net/netip"
	"testing"

	"repro/internal/analysis"
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/trafficgen"
	"repro/internal/wire"
)

// buildFrame constructs a VLAN/MPLS-encapsulated UDP frame with the given
// tag and 5-tuple.
func buildFrame(t testing.TB, vlan uint16, src, dst string, sport, dport uint16) []byte {
	t.Helper()
	pay := wire.Payload(make([]byte, 64))
	buf := wire.NewSerializeBuffer()
	err := wire.SerializeLayers(buf, wire.SerializeOptions{FixLengths: true},
		&wire.Ethernet{EthernetType: wire.EthernetTypeDot1Q},
		&wire.Dot1Q{VLANID: vlan, EthernetType: wire.EthernetTypeMPLSUnicast},
		&wire.MPLS{Label: uint32(vlan) + 100, StackBottom: true, TTL: 64},
		&wire.IPv4{TTL: 60, Protocol: wire.IPProtocolUDP,
			SrcIP: netip.MustParseAddr(src), DstIP: netip.MustParseAddr(dst)},
		&wire.UDP{SrcPort: sport, DstPort: dport},
		&pay)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(buf.Bytes()))
	copy(out, buf.Bytes())
	return out
}

func TestMeteringBasics(t *testing.T) {
	e := NewExporter(Config{})
	f := buildFrame(t, 100, "10.0.0.1", "10.0.0.2", 1000, 2000)
	for i := 0; i < 5; i++ {
		e.DeliverFrame(sim.Time(i)*sim.Second, switchsim.NewFrame(f))
	}
	e.FlushAll()
	if len(e.Exported) != 1 {
		t.Fatalf("records = %d", len(e.Exported))
	}
	r := e.Exported[0]
	if r.Packets != 5 || r.Bytes != int64(5*len(f)) {
		t.Errorf("record = %+v", r)
	}
	if r.First != 0 || r.Last != 4*sim.Second {
		t.Errorf("times = %v..%v", r.First, r.Last)
	}
}

func TestSliceCollisionBlindness(t *testing.T) {
	// The paper's core criticism: two slices reusing the same 10/8
	// addresses are distinct flows to Patchwork (VLAN/MPLS tags differ)
	// but collapse into ONE flow under NetFlow.
	e := NewExporter(Config{})
	fa := buildFrame(t, 100, "10.0.0.1", "10.0.0.2", 1000, 2000)
	fb := buildFrame(t, 200, "10.0.0.1", "10.0.0.2", 1000, 2000) // other slice
	e.DeliverFrame(0, switchsim.NewFrame(fa))
	e.DeliverFrame(1, switchsim.NewFrame(fb))
	e.FlushAll()
	if got := e.DistinctFlows(); got != 1 {
		t.Errorf("NetFlow distinct flows = %d, want 1 (collision)", got)
	}
	// Patchwork's tag-aware keys keep them apart.
	ra := analysis.DigestFrame(0, fa, len(fa)).Flow.Canonical()
	rb := analysis.DigestFrame(0, fb, len(fb)).Flow.Canonical()
	if ra == rb {
		t.Error("Patchwork keys should differ across slices")
	}
}

func TestInactiveTimeoutExpires(t *testing.T) {
	e := NewExporter(Config{InactiveTimeout: 10 * sim.Second})
	f := buildFrame(t, 1, "10.1.0.1", "10.1.0.2", 5, 6)
	e.DeliverFrame(0, switchsim.NewFrame(f))
	// A different flow arriving much later triggers expiry of the first.
	g := buildFrame(t, 1, "10.1.0.3", "10.1.0.4", 7, 8)
	e.DeliverFrame(30*sim.Second, switchsim.NewFrame(g))
	if len(e.Exported) != 1 {
		t.Fatalf("expired records = %d, want 1", len(e.Exported))
	}
	e.FlushAll()
	if len(e.Exported) != 2 {
		t.Errorf("total records = %d", len(e.Exported))
	}
}

func TestActiveTimeoutSplitsLongFlow(t *testing.T) {
	e := NewExporter(Config{ActiveTimeout: 10 * sim.Second, InactiveTimeout: 100 * sim.Second})
	f := buildFrame(t, 1, "10.2.0.1", "10.2.0.2", 5, 6)
	for ts := sim.Time(0); ts <= 25*sim.Second; ts += sim.Second {
		e.DeliverFrame(ts, switchsim.NewFrame(f))
	}
	e.FlushAll()
	if len(e.Exported) < 2 {
		t.Errorf("long flow exported %d records, want >=2 (active timeout)", len(e.Exported))
	}
	if e.DistinctFlows() != 1 {
		t.Errorf("distinct = %d", e.DistinctFlows())
	}
}

func TestCacheEviction(t *testing.T) {
	e := NewExporter(Config{MaxCacheEntries: 4, InactiveTimeout: sim.Hour})
	for i := 0; i < 10; i++ {
		f := buildFrame(t, 1, "10.3.0.1", "10.3.0.2", uint16(1000+i), 80)
		e.DeliverFrame(sim.Time(i), switchsim.NewFrame(f))
	}
	if e.Evictions == 0 {
		t.Error("no evictions despite overflow")
	}
	e.FlushAll()
	if e.DistinctFlows() != 10 {
		t.Errorf("distinct = %d, want 10", e.DistinctFlows())
	}
}

func TestNonIPIgnored(t *testing.T) {
	e := NewExporter(Config{})
	e.DeliverFrame(0, switchsim.Frame{Size: 100}) // no data
	e.DeliverFrame(0, switchsim.NewFrame([]byte{1, 2, 3}))
	if e.FramesIgnored != 2 || len(e.cache) != 0 {
		t.Errorf("ignored = %d cache = %d", e.FramesIgnored, len(e.cache))
	}
}

func TestTCPFlagsAggregated(t *testing.T) {
	g := trafficgen.NewGenerator(bulkOnly(), 5)
	fs := g.NewFlow()
	e := NewExporter(Config{})
	syn, err := g.BuildTCPControl(&fs, trafficgen.DirForward, wire.TCPSyn)
	if err != nil {
		t.Fatal(err)
	}
	dataFrame, err := g.BuildFrame(&fs, trafficgen.DirForward, 1600)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := g.BuildTCPControl(&fs, trafficgen.DirForward, wire.TCPFin|wire.TCPAck)
	if err != nil {
		t.Fatal(err)
	}
	e.DeliverFrame(0, switchsim.NewFrame(syn))
	e.DeliverFrame(1, switchsim.NewFrame(dataFrame))
	e.DeliverFrame(2, switchsim.NewFrame(fin))
	e.FlushAll()
	if len(e.Exported) != 1 {
		t.Fatalf("records = %d", len(e.Exported))
	}
	got := wire.TCPFlags(e.Exported[0].TCPFlagsOr)
	for _, want := range []wire.TCPFlags{wire.TCPSyn, wire.TCPFin, wire.TCPAck} {
		if got&want == 0 {
			t.Errorf("flags OR = %v missing %v", got, want)
		}
	}
}

func bulkOnly() trafficgen.Profile {
	p := trafficgen.Profile{Site: "T", PWFraction: 1, MPLSDepth2Fraction: 1, JumboData: true,
		FlowsPerSampleLogMean: 4, FlowsPerSampleLogSigma: 1}
	p.KindWeights[trafficgen.KindBulkTCP] = 1
	return p
}

func TestDistinctConversationsMergesDirections(t *testing.T) {
	e := NewExporter(Config{})
	fwd := buildFrame(t, 1, "10.5.0.1", "10.5.0.2", 1000, 2000)
	rev := buildFrame(t, 1, "10.5.0.2", "10.5.0.1", 2000, 1000)
	e.DeliverFrame(0, switchsim.NewFrame(fwd))
	e.DeliverFrame(1, switchsim.NewFrame(rev))
	e.FlushAll()
	if e.DistinctFlows() != 2 {
		t.Errorf("directional flows = %d, want 2", e.DistinctFlows())
	}
	if e.DistinctConversations() != 1 {
		t.Errorf("conversations = %d, want 1", e.DistinctConversations())
	}
}
