// Package netflow implements the baseline the paper's Section 4 weighs
// Patchwork against: switch-style flow export (NetFlow/IPFIX-like). The
// authors "set up NetFlow generation and collection within a single
// FABRIC experiment to assess the detail we could obtain" and found it
// inadequate for a shared testbed: flow records carry only the plain
// 5-tuple, so they neither distinguish testbed users whose slices reuse
// the same private address space nor reveal encapsulation structure.
//
// The exporter consumes frames (it implements switchsim.Receiver), keeps
// a classic flow cache with active/inactive timeouts, and emits
// FlowRecords. The ablation-netflow experiment contrasts its view of the
// same traffic with Patchwork's tag-aware analysis.
package netflow

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/wire"
)

// Key is the classic NetFlow v5 key: the plain IP 5-tuple. Deliberately
// no VLAN or MPLS fields — that is the baseline's blindness.
type Key struct {
	Src, Dst         wire.Endpoint
	Proto            wire.IPProtocol
	SrcPort, DstPort uint16
}

// FlowRecord is one exported flow.
type FlowRecord struct {
	Key         Key
	Packets     int64
	Bytes       int64
	First, Last sim.Time
	// TCPFlagsOr is the OR of observed TCP flags (as NetFlow v5 exports).
	TCPFlagsOr uint8
}

// Config sets the exporter's cache behaviour.
type Config struct {
	// ActiveTimeout flushes long-lived flows periodically (default 60 s
	// of virtual time).
	ActiveTimeout sim.Duration
	// InactiveTimeout expires idle flows (default 15 s).
	InactiveTimeout sim.Duration
	// MaxCacheEntries bounds the cache; overflow evicts the oldest flow
	// (default 65536).
	MaxCacheEntries int
}

func (c Config) withDefaults() Config {
	if c.ActiveTimeout == 0 {
		c.ActiveTimeout = 60 * sim.Second
	}
	if c.InactiveTimeout == 0 {
		c.InactiveTimeout = 15 * sim.Second
	}
	if c.MaxCacheEntries == 0 {
		c.MaxCacheEntries = 65536
	}
	return c
}

type cacheEntry struct {
	rec FlowRecord
}

// Exporter is a NetFlow-style metering process. Not safe for concurrent
// use; drive it from the simulation goroutine.
type Exporter struct {
	cfg   Config
	cache map[Key]*cacheEntry
	// pkt is the pooled decode packet behind extractKey: metering a
	// frame reuses its layer structs instead of allocating per frame.
	pkt wire.Packet

	// Exported accumulates flushed flow records.
	Exported []FlowRecord
	// Stats.
	FramesSeen    int64
	FramesIgnored int64 // non-IP or undecodable
	Evictions     int64
}

// NewExporter builds an exporter.
func NewExporter(cfg Config) *Exporter {
	return &Exporter{cfg: cfg.withDefaults(), cache: make(map[Key]*cacheEntry)}
}

// DeliverFrame implements switchsim.Receiver: meter one frame.
func (e *Exporter) DeliverFrame(now sim.Time, f switchsim.Frame) {
	e.FramesSeen++
	if f.Data == nil {
		e.FramesIgnored++
		return
	}
	key, flags, ok := e.extractKey(f.Data)
	if !ok {
		e.FramesIgnored++
		return
	}
	e.expire(now)
	ent, exists := e.cache[key]
	if !exists {
		if len(e.cache) >= e.cfg.MaxCacheEntries {
			e.evictOldest(now)
		}
		ent = &cacheEntry{rec: FlowRecord{Key: key, First: now}}
		e.cache[key] = ent
	}
	ent.rec.Packets++
	ent.rec.Bytes += int64(f.Size)
	ent.rec.Last = now
	ent.rec.TCPFlagsOr |= flags
	// Active timeout: flush but keep metering under the same key.
	if now-ent.rec.First >= e.cfg.ActiveTimeout {
		e.flush(key)
	}
}

// extractKey walks the frame to the FIRST IP header — exactly what a
// switch's flow metering sees. Every encapsulation above it (VLAN, MPLS,
// pseudowire) is invisible in the key.
func (e *Exporter) extractKey(data []byte) (Key, uint8, bool) {
	// LazyNoCopy is safe: the key copies endpoint bytes out and nothing
	// else outlives the call.
	e.pkt.Reset(data, wire.LayerTypeEthernet, wire.LazyNoCopy)
	pkt := &e.pkt
	var k Key
	switch ip := pkt.NetworkLayer().(type) {
	case *wire.IPv4:
		k.Src = wire.NewIPEndpoint(ip.SrcIP)
		k.Dst = wire.NewIPEndpoint(ip.DstIP)
		k.Proto = ip.Protocol
	case *wire.IPv6:
		k.Src = wire.NewIPEndpoint(ip.SrcIP)
		k.Dst = wire.NewIPEndpoint(ip.DstIP)
		k.Proto = ip.NextHeader
	default:
		return k, 0, false
	}
	var flags uint8
	switch tr := pkt.TransportLayer().(type) {
	case *wire.TCP:
		k.SrcPort, k.DstPort = tr.SrcPort, tr.DstPort
		flags = uint8(tr.Flags)
	case *wire.UDP:
		k.SrcPort, k.DstPort = tr.SrcPort, tr.DstPort
	}
	return k, flags, true
}

// expire flushes flows idle past the inactive timeout.
func (e *Exporter) expire(now sim.Time) {
	for key, ent := range e.cache {
		if now-ent.rec.Last >= e.cfg.InactiveTimeout {
			e.flushEntry(key, ent)
		}
	}
}

func (e *Exporter) evictOldest(now sim.Time) {
	var oldestKey Key
	var oldest *cacheEntry
	for key, ent := range e.cache {
		if oldest == nil || ent.rec.Last < oldest.rec.Last {
			oldestKey, oldest = key, ent
		}
	}
	if oldest != nil {
		e.flushEntry(oldestKey, oldest)
		e.Evictions++
	}
}

func (e *Exporter) flush(key Key) {
	if ent, ok := e.cache[key]; ok {
		e.flushEntry(key, ent)
	}
}

func (e *Exporter) flushEntry(key Key, ent *cacheEntry) {
	e.Exported = append(e.Exported, ent.rec)
	delete(e.cache, key)
}

// FlushAll exports every cached flow (end of metering).
func (e *Exporter) FlushAll() {
	for key, ent := range e.cache {
		e.flushEntry(key, ent)
	}
	sort.Slice(e.Exported, func(i, j int) bool {
		if e.Exported[i].First != e.Exported[j].First {
			return e.Exported[i].First < e.Exported[j].First
		}
		return e.Exported[i].Bytes > e.Exported[j].Bytes
	})
}

// DistinctFlows counts distinct keys across exported records (a flow
// flushed twice by the active timeout counts once).
func (e *Exporter) DistinctFlows() int {
	seen := make(map[Key]bool)
	for _, r := range e.Exported {
		seen[r.Key] = true
	}
	return len(seen)
}

// DistinctConversations counts distinct flows after merging the two
// directions of each conversation (A->B and B->A), the unit Patchwork's
// analysis reports. This is the comparable quantity for the Section 4
// detail comparison.
func (e *Exporter) DistinctConversations() int {
	seen := make(map[Key]bool)
	for _, r := range e.Exported {
		seen[canonicalKey(r.Key)] = true
	}
	return len(seen)
}

// canonicalKey orders the endpoints so both directions map together.
func canonicalKey(k Key) Key {
	a, b := k.Src.Raw(), k.Dst.Raw()
	swap := false
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			swap = a[i] > b[i]
			goto done
		}
	}
	swap = k.SrcPort > k.DstPort
done:
	if swap {
		k.Src, k.Dst = k.Dst, k.Src
		k.SrcPort, k.DstPort = k.DstPort, k.SrcPort
	}
	return k
}
