// Package telemetry reproduces the measurement path Patchwork consumes on
// FABRIC: SNMP-style polling of switch port counters into a time-series
// store, fronted by an MFlib-like query API. The real pipeline is
// SNMP -> Prometheus -> MFlib; here a Poller samples switchsim counters on
// the simulation clock at the same 5-minute cadence and the Store answers
// the queries Patchwork needs (recent Tx/Rx rates, busiest ports, weekly
// aggregate utilization).
package telemetry

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/units"
)

// DefaultPollInterval matches FABRIC's 5-minute SNMP sampling.
const DefaultPollInterval = 5 * sim.Minute

// PortKey identifies one switch port across the federation.
type PortKey struct {
	Switch string
	Port   string
}

// String renders "switch/port".
func (k PortKey) String() string { return k.Switch + "/" + k.Port }

// Sample is one polled counter snapshot.
type Sample struct {
	Time     sim.Time
	Counters switchsim.Counters
}

// Rate is a pair of byte rates derived from two adjacent samples.
type Rate struct {
	// Window covered by the two samples.
	From, To sim.Time
	// TxBps and RxBps are bytes per second over the window.
	TxBps, RxBps float64
}

// TotalBps is the sum of both directions.
func (r Rate) TotalBps() float64 { return r.TxBps + r.RxBps }

// Store holds polled samples per port. It is safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	series map[PortKey][]Sample
	keys   []PortKey // deterministic order
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{series: make(map[PortKey][]Sample)}
}

// Record appends a sample for the port.
func (s *Store) Record(key PortKey, sample Sample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, seen := s.series[key]; !seen {
		s.keys = append(s.keys, key)
	}
	s.series[key] = append(s.series[key], sample)
}

// Keys returns all port keys in first-seen order.
func (s *Store) Keys() []PortKey {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]PortKey(nil), s.keys...)
}

// Samples returns the samples for a port in time order.
func (s *Store) Samples(key PortKey) []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.series[key]...)
}

// LatestRate computes the port's byte rates from the two most recent
// samples. It returns false when fewer than two samples exist or the
// window is zero.
func (s *Store) LatestRate(key PortKey) (Rate, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ser := s.series[key]
	if len(ser) < 2 {
		return Rate{}, false
	}
	return rateBetween(ser[len(ser)-2], ser[len(ser)-1])
}

// RateOver computes the average rates over the trailing window ending at
// the most recent sample.
func (s *Store) RateOver(key PortKey, window sim.Duration) (Rate, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ser := s.series[key]
	if len(ser) < 2 {
		return Rate{}, false
	}
	last := ser[len(ser)-1]
	cutoff := last.Time - window
	first := ser[0]
	for i := len(ser) - 2; i >= 0; i-- {
		if ser[i].Time <= cutoff {
			first = ser[i]
			break
		}
		first = ser[i]
	}
	return rateBetween(first, last)
}

func rateBetween(a, b Sample) (Rate, bool) {
	dt := b.Time - a.Time
	if dt <= 0 {
		return Rate{}, false
	}
	secs := float64(dt) / float64(sim.Second)
	return Rate{
		From: a.Time, To: b.Time,
		TxBps: float64(b.Counters.TxBytes-a.Counters.TxBytes) / secs,
		RxBps: float64(b.Counters.RxBytes-a.Counters.RxBytes) / secs,
	}, true
}

// PortRate pairs a port with its measured rate, for ranking queries.
type PortRate struct {
	Key  PortKey
	Rate Rate
}

// BusiestPorts returns the ports of the given switch ranked by total
// (Tx+Rx) rate over the trailing window, busiest first. Ports with no
// measurable rate are omitted.
func (s *Store) BusiestPorts(switchName string, window sim.Duration) []PortRate {
	var out []PortRate
	for _, k := range s.Keys() {
		if k.Switch != switchName {
			continue
		}
		r, ok := s.RateOver(k, window)
		if !ok {
			continue
		}
		out = append(out, PortRate{Key: k, Rate: r})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Rate.TotalBps() > out[j].Rate.TotalBps()
	})
	return out
}

// IdleThresholdBps is the rate below which a port counts as idle for the
// port-cycling heuristics.
const IdleThresholdBps = 1000 // 1 KB/s

// NonIdlePorts returns ports on the switch whose total rate over the
// window exceeds the idle threshold, busiest first.
func (s *Store) NonIdlePorts(switchName string, window sim.Duration) []PortRate {
	all := s.BusiestPorts(switchName, window)
	out := all[:0]
	for _, pr := range all {
		if pr.Rate.TotalBps() > IdleThresholdBps {
			out = append(out, pr)
		}
	}
	return out
}

// WeeklyUtilization aggregates, per week, the sum over all ports of each
// 5-minute byte-rate sample (the quantity graphed in the paper's Fig. 6).
// Weeks with no samples (telemetry gaps) are reported with Missing=true.
type WeeklyUtilization struct {
	Week    int // week index since simulation start
	SumBps  float64
	Missing bool
}

// WeeklyUtilizationSeries computes the Fig. 6 series over [0, end).
func (s *Store) WeeklyUtilizationSeries(end sim.Time) []WeeklyUtilization {
	weeks := int((end + sim.Week - 1) / sim.Week)
	sums := make([]float64, weeks)
	seen := make([]bool, weeks)
	for _, k := range s.Keys() {
		ser := s.Samples(k)
		for i := 1; i < len(ser); i++ {
			r, ok := rateBetween(ser[i-1], ser[i])
			if !ok {
				continue
			}
			w := int(ser[i].Time / sim.Week)
			if w < 0 || w >= weeks {
				continue
			}
			sums[w] += r.TotalBps()
			seen[w] = true
		}
	}
	out := make([]WeeklyUtilization, weeks)
	for i := range out {
		out[i] = WeeklyUtilization{Week: i, SumBps: sums[i], Missing: !seen[i]}
	}
	return out
}

// Poller samples switch counters into a Store on the simulation clock.
type Poller struct {
	store    *Store
	kernel   *sim.Kernel
	interval sim.Duration

	mu       sync.Mutex
	switches []*switchsim.Switch
	gaps     []gap
	ticker   *sim.Ticker
}

type gap struct{ from, to sim.Time }

// NewPoller creates a poller writing into store. Interval 0 selects the
// default 5-minute cadence.
func NewPoller(k *sim.Kernel, store *Store, interval sim.Duration) *Poller {
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	return &Poller{store: store, kernel: k, interval: interval}
}

// Watch registers a switch for polling.
func (p *Poller) Watch(sw *switchsim.Switch) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.switches = append(p.switches, sw)
}

// AddGap suppresses polling during [from, to) — modeling the telemetry
// outages that appear as gray bands in the paper's Fig. 6.
func (p *Poller) AddGap(from, to sim.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gaps = append(p.gaps, gap{from, to})
}

// Start begins periodic polling. Calling Start twice panics.
func (p *Poller) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ticker != nil {
		panic("telemetry: poller already started")
	}
	p.ticker = p.kernel.Every(p.interval, p.pollOnce)
}

// Stop halts polling.
func (p *Poller) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ticker != nil {
		p.ticker.Stop()
		p.ticker = nil
	}
}

// PollNow samples all watched switches immediately (used by tests and by
// Patchwork instances that need a fresh reading before a cycling
// decision).
func (p *Poller) PollNow() { p.pollOnce(p.kernel.Now()) }

func (p *Poller) pollOnce(now sim.Time) {
	p.mu.Lock()
	switches := append([]*switchsim.Switch(nil), p.switches...)
	for _, g := range p.gaps {
		if now >= g.from && now < g.to {
			p.mu.Unlock()
			return
		}
	}
	p.mu.Unlock()
	for _, sw := range switches {
		for _, port := range sw.Ports() {
			key := PortKey{Switch: sw.Name, Port: port.Name}
			p.store.Record(key, Sample{Time: now, Counters: port.Counters()})
		}
	}
}

// FormatRate renders a rate for logs, e.g. "tx 1.25GB/s rx 0B/s".
func FormatRate(r Rate) string {
	return fmt.Sprintf("tx %s/s rx %s/s",
		units.ByteSize(r.TxBps), units.ByteSize(r.RxBps))
}
