package telemetry

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/units"
)

func setup(t *testing.T) (*sim.Kernel, *switchsim.Switch, *Store, *Poller) {
	t.Helper()
	k := sim.NewKernel()
	sw := switchsim.New("STAR", k)
	sw.AddPort("P1", switchsim.RoleUplink, 100*units.Gbps)
	sw.AddPort("P2", switchsim.RoleDownlink, 100*units.Gbps)
	sw.AddPort("P3", switchsim.RoleDownlink, 100*units.Gbps)
	st := NewStore()
	p := NewPoller(k, st, 0)
	p.Watch(sw)
	return k, sw, st, p
}

// drive injects constant-rate traffic on a port for the duration. One
// aggregate "frame" per second keeps the event count small; the 5-minute
// rate sampling only sees byte totals.
func drive(k *sim.Kernel, sw *switchsim.Switch, port string, dir switchsim.Direction, bytesPerSec int64, dur sim.Duration) {
	tick := k.Every(sim.Second, func(sim.Time) {
		_ = sw.Transit(port, dir, switchsim.Frame{Size: int(bytesPerSec)})
	})
	k.At(k.Now()+dur, func() { tick.Stop() })
}

func TestPollerRecordsAllPorts(t *testing.T) {
	k, _, st, p := setup(t)
	p.Start()
	k.RunUntil(16 * sim.Minute) // 3 polls at 5,10,15
	if got := len(st.Keys()); got != 3 {
		t.Fatalf("keys = %d, want 3", got)
	}
	for _, key := range st.Keys() {
		if n := len(st.Samples(key)); n != 3 {
			t.Errorf("%v has %d samples, want 3", key, n)
		}
	}
}

func TestLatestRate(t *testing.T) {
	k, sw, st, p := setup(t)
	p.Start()
	drive(k, sw, "P2", switchsim.DirRx, 1_000_000, 20*sim.Minute) // 1 MB/s
	k.RunUntil(11 * sim.Minute)
	r, ok := st.LatestRate(PortKey{"STAR", "P2"})
	if !ok {
		t.Fatal("no rate")
	}
	if r.RxBps < 0.9e6 || r.RxBps > 1.1e6 {
		t.Errorf("RxBps = %v, want ~1e6", r.RxBps)
	}
	if r.TxBps != 0 {
		t.Errorf("TxBps = %v, want 0", r.TxBps)
	}
}

func TestRateNeedsTwoSamples(t *testing.T) {
	k, _, st, p := setup(t)
	p.Start()
	k.RunUntil(6 * sim.Minute) // one poll only
	if _, ok := st.LatestRate(PortKey{"STAR", "P2"}); ok {
		t.Error("rate from one sample should fail")
	}
}

func TestBusiestPortsRanking(t *testing.T) {
	k, sw, st, p := setup(t)
	p.Start()
	drive(k, sw, "P2", switchsim.DirRx, 5_000_000, 20*sim.Minute)
	drive(k, sw, "P3", switchsim.DirTx, 1_000_000, 20*sim.Minute)
	k.RunUntil(12 * sim.Minute)
	ranked := st.BusiestPorts("STAR", 10*sim.Minute)
	if len(ranked) < 2 {
		t.Fatalf("ranked = %v", ranked)
	}
	if ranked[0].Key.Port != "P2" {
		t.Errorf("busiest = %v, want P2", ranked[0].Key)
	}
	if ranked[0].Rate.TotalBps() <= ranked[1].Rate.TotalBps() {
		t.Error("ranking not descending")
	}
}

func TestNonIdleExcludesQuietPorts(t *testing.T) {
	k, sw, st, p := setup(t)
	p.Start()
	drive(k, sw, "P2", switchsim.DirRx, 2_000_000, 20*sim.Minute)
	// P1 and P3 stay silent.
	k.RunUntil(12 * sim.Minute)
	nonIdle := st.NonIdlePorts("STAR", 10*sim.Minute)
	if len(nonIdle) != 1 || nonIdle[0].Key.Port != "P2" {
		t.Errorf("nonIdle = %v, want only P2", nonIdle)
	}
}

func TestGapSuppressesPolls(t *testing.T) {
	k, _, st, p := setup(t)
	p.AddGap(7*sim.Minute, 13*sim.Minute) // swallows the 10-minute poll
	p.Start()
	k.RunUntil(16 * sim.Minute)
	n := len(st.Samples(PortKey{"STAR", "P1"}))
	if n != 2 { // polls at 5 and 15 only
		t.Errorf("samples = %d, want 2 (gap should suppress t=10)", n)
	}
}

func TestWeeklyUtilizationSeries(t *testing.T) {
	k, sw, st, p := setup(t)
	p.Start()
	// Active in week 0, idle in week 1, active in week 2.
	drive(k, sw, "P2", switchsim.DirRx, 1_000_000, 2*sim.Day)
	k.RunUntil(1 * sim.Week)
	k.At(2*sim.Week+sim.Hour, func() {
		drive(k, sw, "P2", switchsim.DirTx, 2_000_000, 1*sim.Day)
	})
	k.RunUntil(3 * sim.Week)
	p.Stop()
	series := st.WeeklyUtilizationSeries(3 * sim.Week)
	if len(series) != 3 {
		t.Fatalf("weeks = %d", len(series))
	}
	if series[0].SumBps <= 0 {
		t.Error("week 0 should show activity")
	}
	if series[2].SumBps <= 0 {
		t.Error("week 2 should show activity")
	}
	if series[0].Missing || series[2].Missing {
		t.Error("weeks with polls should not be missing")
	}
	// Week 1 polled but idle: present, near-zero sum.
	if series[1].Missing {
		t.Error("week 1 was polled, not missing")
	}
}

func TestWeeklyGapMarksMissing(t *testing.T) {
	k, _, st, p := setup(t)
	p.AddGap(1*sim.Week, 2*sim.Week)
	p.Start()
	k.RunUntil(3 * sim.Week)
	series := st.WeeklyUtilizationSeries(3 * sim.Week)
	if !series[1].Missing {
		t.Error("gap week should be missing")
	}
	if series[0].Missing || series[2].Missing {
		t.Error("polled weeks should be present")
	}
}

func TestRateOverWindow(t *testing.T) {
	k, sw, st, p := setup(t)
	p.Start()
	// 1 MB/s for the first 10 minutes, then silence.
	drive(k, sw, "P2", switchsim.DirRx, 1_000_000, 10*sim.Minute)
	k.RunUntil(31 * sim.Minute)
	key := PortKey{"STAR", "P2"}
	short, ok := st.RateOver(key, 5*sim.Minute)
	if !ok {
		t.Fatal("no short rate")
	}
	long, ok := st.RateOver(key, 30*sim.Minute)
	if !ok {
		t.Fatal("no long rate")
	}
	if short.RxBps > 1000 {
		t.Errorf("recent window should be idle, got %v", short.RxBps)
	}
	if long.RxBps < 100_000 {
		t.Errorf("long window should include the burst, got %v", long.RxBps)
	}
}

func TestPollNow(t *testing.T) {
	k, _, st, p := setup(t)
	p.PollNow()
	k.Run()
	if len(st.Samples(PortKey{"STAR", "P1"})) != 1 {
		t.Error("PollNow should record immediately")
	}
}

func TestDoubleStartPanics(t *testing.T) {
	_, _, _, p := setup(t)
	p.Start()
	defer func() {
		if recover() == nil {
			t.Error("double Start should panic")
		}
	}()
	p.Start()
}

func TestFormatRate(t *testing.T) {
	s := FormatRate(Rate{TxBps: 1_250_000_000, RxBps: 0})
	if !strings.Contains(s, "tx 1.25GB/s") {
		t.Errorf("FormatRate = %q", s)
	}
}

func TestPortKeyString(t *testing.T) {
	if (PortKey{"STAR", "P1"}).String() != "STAR/P1" {
		t.Error("PortKey.String")
	}
}
