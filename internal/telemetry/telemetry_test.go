package telemetry

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/units"
)

func setup(t *testing.T) (*sim.Kernel, *switchsim.Switch, *Store, *Poller) {
	t.Helper()
	k := sim.NewKernel()
	sw := switchsim.New("STAR", k)
	sw.AddPort("P1", switchsim.RoleUplink, 100*units.Gbps)
	sw.AddPort("P2", switchsim.RoleDownlink, 100*units.Gbps)
	sw.AddPort("P3", switchsim.RoleDownlink, 100*units.Gbps)
	st := NewStore()
	p := NewPoller(k, st, 0)
	p.Watch(sw)
	return k, sw, st, p
}

// drive injects constant-rate traffic on a port for the duration. One
// aggregate "frame" per second keeps the event count small; the 5-minute
// rate sampling only sees byte totals.
func drive(k *sim.Kernel, sw *switchsim.Switch, port string, dir switchsim.Direction, bytesPerSec int64, dur sim.Duration) {
	tick := k.Every(sim.Second, func(sim.Time) {
		_ = sw.Transit(port, dir, switchsim.Frame{Size: int(bytesPerSec)})
	})
	k.At(k.Now()+dur, func() { tick.Stop() })
}

func TestPollerRecordsAllPorts(t *testing.T) {
	k, _, st, p := setup(t)
	p.Start()
	k.RunUntil(16 * sim.Minute) // 3 polls at 5,10,15
	if got := len(st.Keys()); got != 3 {
		t.Fatalf("keys = %d, want 3", got)
	}
	for _, key := range st.Keys() {
		if n := len(st.Samples(key)); n != 3 {
			t.Errorf("%v has %d samples, want 3", key, n)
		}
	}
}

func TestLatestRate(t *testing.T) {
	k, sw, st, p := setup(t)
	p.Start()
	drive(k, sw, "P2", switchsim.DirRx, 1_000_000, 20*sim.Minute) // 1 MB/s
	k.RunUntil(11 * sim.Minute)
	r, ok := st.LatestRate(PortKey{"STAR", "P2"})
	if !ok {
		t.Fatal("no rate")
	}
	if r.RxBps < 0.9e6 || r.RxBps > 1.1e6 {
		t.Errorf("RxBps = %v, want ~1e6", r.RxBps)
	}
	if r.TxBps != 0 {
		t.Errorf("TxBps = %v, want 0", r.TxBps)
	}
}

func TestRateNeedsTwoSamples(t *testing.T) {
	k, _, st, p := setup(t)
	p.Start()
	k.RunUntil(6 * sim.Minute) // one poll only
	if _, ok := st.LatestRate(PortKey{"STAR", "P2"}); ok {
		t.Error("rate from one sample should fail")
	}
}

func TestBusiestPortsRanking(t *testing.T) {
	k, sw, st, p := setup(t)
	p.Start()
	drive(k, sw, "P2", switchsim.DirRx, 5_000_000, 20*sim.Minute)
	drive(k, sw, "P3", switchsim.DirTx, 1_000_000, 20*sim.Minute)
	k.RunUntil(12 * sim.Minute)
	ranked := st.BusiestPorts("STAR", 10*sim.Minute)
	if len(ranked) < 2 {
		t.Fatalf("ranked = %v", ranked)
	}
	if ranked[0].Key.Port != "P2" {
		t.Errorf("busiest = %v, want P2", ranked[0].Key)
	}
	if ranked[0].Rate.TotalBps() <= ranked[1].Rate.TotalBps() {
		t.Error("ranking not descending")
	}
}

func TestNonIdleExcludesQuietPorts(t *testing.T) {
	k, sw, st, p := setup(t)
	p.Start()
	drive(k, sw, "P2", switchsim.DirRx, 2_000_000, 20*sim.Minute)
	// P1 and P3 stay silent.
	k.RunUntil(12 * sim.Minute)
	nonIdle := st.NonIdlePorts("STAR", 10*sim.Minute)
	if len(nonIdle) != 1 || nonIdle[0].Key.Port != "P2" {
		t.Errorf("nonIdle = %v, want only P2", nonIdle)
	}
}

func TestGapSuppressesPolls(t *testing.T) {
	k, _, st, p := setup(t)
	p.AddGap(7*sim.Minute, 13*sim.Minute) // swallows the 10-minute poll
	p.Start()
	k.RunUntil(16 * sim.Minute)
	n := len(st.Samples(PortKey{"STAR", "P1"}))
	if n != 2 { // polls at 5 and 15 only
		t.Errorf("samples = %d, want 2 (gap should suppress t=10)", n)
	}
}

func TestWeeklyUtilizationSeries(t *testing.T) {
	k, sw, st, p := setup(t)
	p.Start()
	// Active in week 0, idle in week 1, active in week 2.
	drive(k, sw, "P2", switchsim.DirRx, 1_000_000, 2*sim.Day)
	k.RunUntil(1 * sim.Week)
	k.At(2*sim.Week+sim.Hour, func() {
		drive(k, sw, "P2", switchsim.DirTx, 2_000_000, 1*sim.Day)
	})
	k.RunUntil(3 * sim.Week)
	p.Stop()
	series := st.WeeklyUtilizationSeries(3 * sim.Week)
	if len(series) != 3 {
		t.Fatalf("weeks = %d", len(series))
	}
	if series[0].SumBps <= 0 {
		t.Error("week 0 should show activity")
	}
	if series[2].SumBps <= 0 {
		t.Error("week 2 should show activity")
	}
	if series[0].Missing || series[2].Missing {
		t.Error("weeks with polls should not be missing")
	}
	// Week 1 polled but idle: present, near-zero sum.
	if series[1].Missing {
		t.Error("week 1 was polled, not missing")
	}
}

func TestWeeklyGapMarksMissing(t *testing.T) {
	k, _, st, p := setup(t)
	p.AddGap(1*sim.Week, 2*sim.Week)
	p.Start()
	k.RunUntil(3 * sim.Week)
	series := st.WeeklyUtilizationSeries(3 * sim.Week)
	if !series[1].Missing {
		t.Error("gap week should be missing")
	}
	if series[0].Missing || series[2].Missing {
		t.Error("polled weeks should be present")
	}
}

func TestRateOverWindow(t *testing.T) {
	k, sw, st, p := setup(t)
	p.Start()
	// 1 MB/s for the first 10 minutes, then silence.
	drive(k, sw, "P2", switchsim.DirRx, 1_000_000, 10*sim.Minute)
	k.RunUntil(31 * sim.Minute)
	key := PortKey{"STAR", "P2"}
	short, ok := st.RateOver(key, 5*sim.Minute)
	if !ok {
		t.Fatal("no short rate")
	}
	long, ok := st.RateOver(key, 30*sim.Minute)
	if !ok {
		t.Fatal("no long rate")
	}
	if short.RxBps > 1000 {
		t.Errorf("recent window should be idle, got %v", short.RxBps)
	}
	if long.RxBps < 100_000 {
		t.Errorf("long window should include the burst, got %v", long.RxBps)
	}
}

func TestRateOverSpansPollerGap(t *testing.T) {
	k, sw, st, p := setup(t)
	p.AddGap(7*sim.Minute, 23*sim.Minute) // swallows the 10/15/20-minute polls
	p.Start()
	drive(k, sw, "P2", switchsim.DirRx, 1_000_000, 30*sim.Minute)
	k.RunUntil(31 * sim.Minute)
	key := PortKey{"STAR", "P2"}
	// The 10-minute window's cutoff (t=20) falls inside the gap. RateOver
	// must anchor on the nearest sample at or before the cutoff (t=5)
	// rather than report no data, and average over the real 25-minute
	// span so the gap does not inflate the rate.
	r, ok := st.RateOver(key, 10*sim.Minute)
	if !ok {
		t.Fatal("RateOver failed across the gap")
	}
	if r.From != 5*sim.Minute || r.To != 30*sim.Minute {
		t.Errorf("window [%v,%v], want [5m,30m] spanning the gap", r.From, r.To)
	}
	if r.RxBps < 0.9e6 || r.RxBps > 1.1e6 {
		t.Errorf("RxBps = %v, want ~1e6 averaged over the real span", r.RxBps)
	}
}

func TestWeeklyUtilizationSeriesEndOnBoundary(t *testing.T) {
	k, sw, st, p := setup(t)
	p.Start()
	drive(k, sw, "P2", switchsim.DirRx, 1_000_000, 2*sim.Day)
	k.RunUntil(2 * sim.Week)
	p.Stop()
	// end falling exactly on a week boundary must not grow a phantom
	// third week, and a sample landing exactly at t=end belongs to the
	// out-of-range week 2 and is dropped, not misfiled or panicking.
	series := st.WeeklyUtilizationSeries(2 * sim.Week)
	if len(series) != 2 {
		t.Fatalf("weeks = %d, want exactly 2 for end on the boundary", len(series))
	}
	if series[0].SumBps <= 0 || series[0].Missing {
		t.Error("week 0 should show the driven traffic")
	}
	if series[1].Missing {
		t.Error("week 1 was polled (idle), not missing")
	}
}

func TestPollNow(t *testing.T) {
	k, _, st, p := setup(t)
	p.PollNow()
	k.Run()
	if len(st.Samples(PortKey{"STAR", "P1"})) != 1 {
		t.Error("PollNow should record immediately")
	}
}

func TestDoubleStartPanics(t *testing.T) {
	_, _, _, p := setup(t)
	p.Start()
	defer func() {
		if recover() == nil {
			t.Error("double Start should panic")
		}
	}()
	p.Start()
}

func TestFormatRate(t *testing.T) {
	s := FormatRate(Rate{TxBps: 1_250_000_000, RxBps: 0})
	if !strings.Contains(s, "tx 1.25GB/s") {
		t.Errorf("FormatRate = %q", s)
	}
}

func TestPortKeyString(t *testing.T) {
	if (PortKey{"STAR", "P1"}).String() != "STAR/P1" {
		t.Error("PortKey.String")
	}
}

func TestBusiestPortsGapsOnlyWindow(t *testing.T) {
	k, sw, st, p := setup(t)
	// The whole observation window is a telemetry outage: every poll is
	// suppressed, so no port has a measurable rate despite real traffic.
	p.AddGap(0, sim.Hour)
	p.Start()
	drive(k, sw, "P2", switchsim.DirRx, 1_000_000, 30*sim.Minute)
	k.RunUntil(30 * sim.Minute)
	if got := st.BusiestPorts("STAR", 10*sim.Minute); len(got) != 0 {
		t.Fatalf("busiest over a gaps-only window = %v, want none", got)
	}
	if _, ok := st.LatestRate(PortKey{"STAR", "P2"}); ok {
		t.Error("LatestRate should report no rate with zero samples")
	}
}

func TestRateOverBinBoundaries(t *testing.T) {
	st := NewStore()
	key := PortKey{"STAR", "P1"}
	// Samples at t = 0, 5, 10, 15 min, growing 300 MB per bin (1 MB/s).
	for i := 0; i < 4; i++ {
		st.Record(key, Sample{
			Time:     sim.Time(i) * sim.Time(5*sim.Minute),
			Counters: switchsim.Counters{RxBytes: uint64(i) * 300_000_000},
		})
	}
	// A 5-minute window from the last sample puts the cutoff exactly on
	// the t=10min sample; that sample must anchor the rate, not its
	// neighbors.
	r, ok := st.RateOver(key, 5*sim.Minute)
	if !ok {
		t.Fatal("no rate at exact bin boundary")
	}
	if r.From != sim.Time(10*sim.Minute) || r.To != sim.Time(15*sim.Minute) {
		t.Errorf("window = [%v, %v], want [10m, 15m]", r.From, r.To)
	}
	if r.RxBps < 0.99e6 || r.RxBps > 1.01e6 {
		t.Errorf("RxBps = %v, want ~1e6", r.RxBps)
	}
	// A window wider than the series clamps at the first sample.
	r, ok = st.RateOver(key, sim.Hour)
	if !ok || r.From != 0 {
		t.Errorf("wide window From = %v ok=%v, want 0 true", r.From, ok)
	}
	// Two samples at the same instant have no measurable window.
	st2 := NewStore()
	st2.Record(key, Sample{Time: sim.Time(sim.Minute)})
	st2.Record(key, Sample{Time: sim.Time(sim.Minute)})
	if _, ok := st2.LatestRate(key); ok {
		t.Error("zero-width sample pair should not produce a rate")
	}
}
