package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func run(t *testing.T, id string) *Result {
	t.Helper()
	r, err := Run(id, 1)
	if err != nil {
		t.Fatalf("Run(%q): %v", id, err)
	}
	if r.ID != id {
		t.Errorf("result id = %q", r.ID)
	}
	if len(r.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatalf("%s render: %v", id, err)
	}
	if !strings.Contains(buf.String(), id) {
		t.Errorf("%s render missing id", id)
	}
	buf.Reset()
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatalf("%s CSV: %v", id, err)
	}
	return r
}

func cell(t *testing.T, r *Result, row, col int) string {
	t.Helper()
	if row >= len(r.Rows) || col >= len(r.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d) in %d rows", r.ID, row, col, len(r.Rows))
	}
	return r.Rows[row][col]
}

func cellFloat(t *testing.T, r *Result, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell(t, r, row, col), "%"), 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", r.ID, row, col, cell(t, r, row, col))
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation-cycling", "ablation-methods", "ablation-mirror-direction",
		"ablation-netflow", "ablation-thresholds", "ablation-truncation",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig2", "fig3", "fig4", "fig5", "fig6", "framesizes",
		"portutil", "table1", "table2", "tcpdump",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("ids = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids = %v, want %v", got, want)
		}
	}
	if _, err := Run("nope", 1); err == nil {
		t.Error("unknown id should fail")
	}
}

func TestFig2Shape(t *testing.T) {
	r := run(t, "fig2")
	if len(r.Rows) != 28 {
		t.Errorf("sites = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		down, _ := strconv.Atoi(row[1])
		up, _ := strconv.Atoi(row[2])
		if down <= up {
			t.Errorf("%s: downlinks %d <= uplinks %d", row[0], down, up)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	r := run(t, "fig3")
	single := cellFloat(t, r, 0, 2)
	if single < 60 || single > 72 {
		t.Errorf("single-site %% = %v, want ~66.5", single)
	}
}

func TestFig4Shape(t *testing.T) {
	r := run(t, "fig4")
	// Find the 24h row.
	for _, row := range r.Rows {
		if row[0] == "24h" {
			v, _ := strconv.ParseFloat(row[1], 64)
			if v < 0.72 || v > 0.78 {
				t.Errorf("P(<=24h) = %v, want ~0.75", v)
			}
			return
		}
	}
	t.Fatal("no 24h row")
}

func TestFig5Shape(t *testing.T) {
	r := run(t, "fig5")
	mean := cellFloat(t, r, 0, 1)
	std := cellFloat(t, r, 1, 1)
	max := cellFloat(t, r, 2, 1)
	if mean < 65 || mean > 110 {
		t.Errorf("mean = %v, want ~85", mean)
	}
	if std < 30 || std > 85 {
		t.Errorf("stddev = %v, want ~52", std)
	}
	if max < 170 || max > 450 {
		t.Errorf("max = %v, want ~272", max)
	}
}

func TestFig6Shape(t *testing.T) {
	r := run(t, "fig6")
	if len(r.Rows) != 52 {
		t.Fatalf("weeks = %d", len(r.Rows))
	}
	gaps := 0
	for _, row := range r.Rows {
		if row[2] == "true" {
			gaps++
		}
	}
	if gaps != 3 {
		t.Errorf("gap weeks = %d, want 3", gaps)
	}
	// The notes carry the peak calibration.
	joined := strings.Join(r.Notes, " ")
	if !strings.Contains(joined, "3.968") {
		t.Errorf("peak note missing: %v", r.Notes)
	}
}

func TestTcpdumpShape(t *testing.T) {
	r := run(t, "tcpdump")
	// Rows are 6..12 Gbps; loss must be ~0 at 8 and substantial at 11.
	var loss8, loss11 float64 = -1, -1
	for _, row := range r.Rows {
		switch row[0] {
		case "8Gbps":
			loss8, _ = strconv.ParseFloat(row[1], 64)
		case "11Gbps":
			loss11, _ = strconv.ParseFloat(row[1], 64)
		}
	}
	if loss8 != 0 {
		t.Errorf("loss@8G = %v", loss8)
	}
	if loss11 < 5 {
		t.Errorf("loss@11G = %v, want substantial", loss11)
	}
}

func TestTable1Shape(t *testing.T) {
	r := run(t, "table1")
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Every paper operating point must be feasible within 15 cores with
	// loss < 1%.
	for _, row := range r.Rows {
		if row[3] == "infeasible<=15" {
			t.Errorf("row %v infeasible", row)
			continue
		}
		loss, _ := strconv.ParseFloat(row[4], 64)
		if loss >= 1 {
			t.Errorf("row %v loss = %v", row, loss)
		}
	}
}

func TestTable2NeedsFewerCores(t *testing.T) {
	t1 := run(t, "table1")
	t2 := run(t, "table2")
	// Compare the 1514B@100Gbps rows: 64B truncation needs fewer cores.
	c1, _ := strconv.Atoi(cell(t, t1, 0, 3))
	c2, _ := strconv.Atoi(cell(t, t2, 0, 3))
	if c2 >= c1 {
		t.Errorf("64B trunc cores (%d) should beat 200B trunc cores (%d)", c2, c1)
	}
	// 512B@100Gbps: feasible at 64B truncation.
	if cell(t, t2, 2, 3) == "infeasible<=15" {
		t.Error("512B@100G/64B should be feasible")
	}
}

func TestFig14Shape(t *testing.T) {
	r := run(t, "fig14")
	if len(r.Rows) != 25 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// At 21% cache usage the 10:20 sum must dwarf the 20:50 sum.
	var tight, wide float64
	for _, row := range r.Rows {
		if row[0] == "21" {
			tight, _ = strconv.ParseFloat(row[1], 64)
			wide, _ = strconv.ParseFloat(row[2], 64)
		}
	}
	if tight <= 0 {
		t.Fatal("no 10:20 latency at 21%")
	}
	if wide*50 > tight {
		t.Errorf("10:20 (%v ms) should be orders of magnitude above 20:50 (%v ms)", tight, wide)
	}
}

func TestFig10Shape(t *testing.T) {
	r := run(t, "fig10")
	var success, failed float64
	var total int
	for _, row := range r.Rows {
		n, _ := strconv.Atoi(row[1])
		total += n
		switch row[0] {
		case "success":
			success = cellFloat(t, r, 0, 2)
		case "failed":
			failed, _ = strconv.ParseFloat(strings.TrimSuffix(row[2], "%"), 64)
		}
	}
	if total != 96 { // 16 runs x 6 sites
		t.Errorf("site runs = %d", total)
	}
	if success < 60 || success > 95 {
		t.Errorf("success = %v%%, want ~79%%", success)
	}
	if failed < 5 || failed > 40 {
		t.Errorf("failed = %v%%, want ~20%%", failed)
	}
}

func TestFig11Shape(t *testing.T) {
	r := run(t, "fig11")
	if len(r.Rows) != profileCorpusSites {
		t.Fatalf("sites = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		depth, _ := strconv.Atoi(row[2])
		if depth < 5 || depth > 12 {
			t.Errorf("%s depth = %d, want 5-12", row[0], depth)
		}
	}
	// Diversity: the spread between most- and least-diverse sites is wide.
	hi, _ := strconv.Atoi(cell(t, r, 0, 1))
	lo, _ := strconv.Atoi(cell(t, r, len(r.Rows)-1, 1))
	if hi-lo < 4 {
		t.Errorf("header diversity spread = %d-%d", hi, lo)
	}
}

func TestFig12Shape(t *testing.T) {
	r := run(t, "fig12")
	get := func(name string) float64 {
		for _, row := range r.Rows {
			if row[0] == name {
				v, _ := strconv.ParseFloat(row[1], 64)
				return v
			}
		}
		return -1
	}
	if eth := get("Ethernet"); eth <= 100 {
		t.Errorf("Ethernet = %v, want >100", eth)
	}
	ip4, ip6 := get("IPv4"), get("IPv6")
	if ip4 < 60 {
		t.Errorf("IPv4 = %v", ip4)
	}
	if ip6 < 0.3 || ip6 > 6 {
		t.Errorf("IPv6 = %v, want small but present (~1.93)", ip6)
	}
	if tcp, udp := get("TCP"), get("UDP"); tcp <= udp {
		t.Errorf("TCP (%v) should dominate UDP (%v)", tcp, udp)
	}
}

func TestFig13Shape(t *testing.T) {
	r := run(t, "fig13")
	// Low buckets dominate.
	low, high := 0, 0
	for i, row := range r.Rows {
		n, _ := strconv.Atoi(row[1])
		if i <= 3 {
			low += n
		} else {
			high += n
		}
	}
	if low <= high {
		t.Errorf("flow counts not concentrated low: low=%d high=%d", low, high)
	}
}

func TestFig15Shape(t *testing.T) {
	r := run(t, "fig15")
	if len(r.Rows) != profileCorpusSites {
		t.Fatalf("sites = %d", len(r.Rows))
	}
	jumboCol := len(r.Header) - 1
	variety := map[bool]int{}
	for _, row := range r.Rows {
		j, _ := strconv.ParseFloat(row[jumboCol], 64)
		variety[j > 50]++
	}
	if variety[true] == 0 || variety[false] == 0 {
		t.Errorf("no site variety in jumbo share: %v", variety)
	}
}

func TestFrameSizesShape(t *testing.T) {
	r := run(t, "framesizes")
	get := func(bucket string) float64 {
		for _, row := range r.Rows {
			if row[0] == bucket {
				v, _ := strconv.ParseFloat(row[2], 64)
				return v
			}
		}
		return -1
	}
	jumbo := get("1519-2047")
	acks := get("65-127")
	if jumbo < 40 {
		t.Errorf("1519-2047 = %v%%, should dominate (paper 74.7%%)", jumbo)
	}
	if acks < 5 {
		t.Errorf("65-127 = %v%%, want a substantial ACK share (paper 14.15%%)", acks)
	}
	if jumbo <= acks {
		t.Error("jumbo should exceed ACK share")
	}
}

func TestAblations(t *testing.T) {
	cyc := run(t, "ablation-cycling")
	if len(cyc.Rows) != 4 {
		t.Errorf("cycling rows = %d", len(cyc.Rows))
	}
	tr := run(t, "ablation-truncation")
	first, _ := strconv.ParseFloat(cell(t, tr, 0, 1), 64)
	last, _ := strconv.ParseFloat(cell(t, tr, len(tr.Rows)-1, 1), 64)
	if last <= first {
		t.Errorf("loss should grow with snaplen: %v -> %v", first, last)
	}
	th := run(t, "ablation-thresholds")
	if cell(t, th, 0, 1) == ">10" {
		t.Error("10:20 should stall within 10s")
	}
	md := run(t, "ablation-mirror-direction")
	bothLoss, _ := strconv.ParseFloat(cell(t, md, 0, 3), 64)
	rxLoss, _ := strconv.ParseFloat(cell(t, md, 1, 3), 64)
	if bothLoss < 30 {
		t.Errorf("both-direction loss = %v, want ~50", bothLoss)
	}
	if rxLoss != 0 {
		t.Errorf("rx-only loss = %v, want 0", rxLoss)
	}
	me := run(t, "ablation-methods")
	tcpdumpLoss, _ := strconv.ParseFloat(cell(t, me, 0, 1), 64)
	dpdkLoss, _ := strconv.ParseFloat(cell(t, me, 1, 1), 64)
	if tcpdumpLoss <= dpdkLoss {
		t.Errorf("tcpdump (%v%%) should lose more than DPDK (%v%%) at 20G", tcpdumpLoss, dpdkLoss)
	}
}

func TestAblationNetflowShape(t *testing.T) {
	r := run(t, "ablation-netflow")
	nf, _ := strconv.Atoi(cell(t, r, 0, 1))
	pw, _ := strconv.Atoi(cell(t, r, 0, 2))
	if nf <= 0 || pw < nf*18/10 {
		t.Errorf("collision not visible: netflow=%d patchwork=%d (want ~2x)", nf, pw)
	}
	encap, _ := strconv.Atoi(cell(t, r, 2, 2))
	if encap < 3 {
		t.Errorf("encapsulation patterns = %d", encap)
	}
}

func TestPortUtilShape(t *testing.T) {
	r := run(t, "portutil")
	var median, p100 float64
	for _, row := range r.Rows {
		switch row[0] {
		case "p50":
			median, _ = strconv.ParseFloat(row[1], 64)
		case "p100":
			p100, _ = strconv.ParseFloat(row[1], 64)
		}
	}
	if median < 30 || median > 46 {
		t.Errorf("median utilization = %v%%, want ~38%%", median)
	}
	if p100 != 100 {
		t.Errorf("max utilization = %v%%, want line rate", p100)
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{ID: "x", Title: "t", Header: []string{"a", "b"}}
	r.AddRow(1, 2.50)
	if r.Rows[0][1] != "2.5" {
		t.Errorf("float formatting = %q", r.Rows[0][1])
	}
	r.Notef("n=%d", 7)
	if r.Notes[0] != "n=7" {
		t.Errorf("note = %q", r.Notes[0])
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "a,b\n1,2.5\n") {
		t.Errorf("csv = %q", buf.String())
	}
}
