package experiments

import (
	patchwork "repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/testbed"
	"repro/internal/trafficgen"
	"repro/internal/units"
)

func init() {
	register("fig10", Fig10)
}

// Fig10 regenerates the deployment-behavior figure: the outcome of many
// scheduled Patchwork runs across the federation under injected failure
// modes — transient back-end outages, dedicated-NIC scarcity (other
// experiments holding the NICs), and the occasional Patchwork crash. The
// paper reports a 79% success rate over a 4-month period, with roughly
// 20% of cases lacking resources and the remainder crashing.
func Fig10(seed uint64) (*Result, error) {
	r := rng.New(seed ^ 0xF10)
	const scheduledRuns = 16 // profiling occasions
	const sitesPerRun = 6

	counts := map[patchwork.Outcome]int{}
	totalSiteRuns := 0

	// Each scheduled run gets a fresh kernel; the shared registry/tracer
	// read sim time through a rebindable clock so observations always
	// stamp against the currently-running kernel.
	var cur *sim.Kernel
	var reg *obs.Registry
	var tracer *obs.Tracer
	if Observe {
		clock := func() sim.Time {
			if cur == nil {
				return 0
			}
			return cur.Now()
		}
		reg = obs.NewRegistry(clock)
		tracer = obs.NewTracer(clock)
	}

	for runIdx := 0; runIdx < scheduledRuns; runIdx++ {
		k := sim.NewKernel()
		cur = k
		specs := make([]testbed.SiteSpec, sitesPerRun)
		for i := range specs {
			specs[i] = testbed.SiteSpec{
				Name: "S" + string(rune('A'+i)), Uplinks: 2, Downlinks: 8,
				DedicatedNICs: 3, Cores: 64, RAM: 256 * units.GB, Storage: 2 * units.TB,
			}
		}
		fed, err := testbed.NewFederation(k, specs)
		if err != nil {
			return nil, err
		}
		fed.SetObs(reg)
		store := telemetry.NewStore()
		poller := telemetry.NewPoller(k, store, 30*sim.Second)
		profiles := trafficgen.MakeSiteProfiles(seed, sitesPerRun)
		var drivers []*patchwork.TrafficDriver
		for i, s := range fed.Sites() {
			poller.Watch(s.Switch)
			gen := trafficgen.NewGenerator(profiles[i], seed+uint64(runIdx*100+i))
			d := patchwork.NewTrafficDriver(k, s, gen, nil)
			d.WindowFrames = 60
			drivers = append(drivers, d)
			d.Start()
		}
		poller.Start()

		// Failure injection, calibrated to the paper's observed mix:
		// ~11% of site-runs hit other experiments holding every dedicated
		// NIC, ~5.5% hit a transient back-end fault, ~1% crash.
		for _, s := range fed.Sites() {
			if r.Bool(0.11) {
				if _, err := s.Allocate(0, testbed.SliceRequest{Name: "hog", VMs: []testbed.VMRequest{
					{DedicatedNICs: s.Spec.DedicatedNICs, Cores: 4, RAM: units.GB, Storage: units.GB},
				}}); err != nil {
					return nil, err
				}
			}
			if r.Bool(0.055) {
				s.AddOutage(0, sim.Hour)
			}
		}
		cfg := patchwork.Config{
			Mode:             patchwork.AllExperiment,
			SampleDuration:   2 * sim.Second,
			SampleInterval:   4 * sim.Second,
			SamplesPerRun:    2,
			Runs:             2,
			InstancesWanted:  1,
			Seed:             seed + uint64(runIdx),
			CrashProbability: 0.012,
			Obs:              reg,
			Tracer:           tracer,
		}
		coord, err := patchwork.NewCoordinator(fed, store, poller, cfg)
		if err != nil {
			return nil, err
		}
		prof, err := runToCompletion(k, coord, drivers, poller)
		if err != nil {
			return nil, err
		}
		for o, n := range prof.OutcomeCounts() {
			counts[o] += n
		}
		totalSiteRuns += len(prof.Bundles)
	}

	res := &Result{
		ID:      "fig10",
		Title:   "Behavior of Patchwork across scheduled runs (outcome mix)",
		Header:  []string{"outcome", "site_runs", "percent"},
		Metrics: reg, Trace: tracer,
	}
	for _, o := range []patchwork.Outcome{
		patchwork.OutcomeSuccess, patchwork.OutcomeDegraded,
		patchwork.OutcomeFailed, patchwork.OutcomeIncomplete,
	} {
		res.AddRow(o.String(), counts[o], units.PercentOf(int64(counts[o]), int64(totalSiteRuns)))
	}
	okPct := float64(counts[patchwork.OutcomeSuccess]+counts[patchwork.OutcomeDegraded]) /
		float64(totalSiteRuns) * 100
	res.Notef("paper: Patchwork succeeded in profiling all FABRIC sites in 79%% of cases; ~20%% lacked resources; the rest crashed")
	res.Notef("measured: %.1f%% of %d site-runs completed (success+degraded)", okPct, totalSiteRuns)
	return res, nil
}

// runToCompletion steps the kernel until the coordinator reports done,
// then stops the drivers and poller.
func runToCompletion(k *sim.Kernel, coord *patchwork.Coordinator, drivers []*patchwork.TrafficDriver, poller *telemetry.Poller) (*patchwork.Profile, error) {
	var prof *patchwork.Profile
	var perr error
	finished := false
	coord.Start(func(p *patchwork.Profile, err error) { prof, perr = p, err; finished = true })
	for !finished {
		if !k.Step() {
			break
		}
	}
	for _, d := range drivers {
		d.Stop()
	}
	poller.Stop()
	return prof, perr
}
