package experiments

import (
	"fmt"

	"repro/internal/capture"
	"repro/internal/hostsim"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/units"
)

func init() {
	register("tcpdump", TcpdumpCeiling)
	register("table1", Table1)
	register("table2", Table2)
	register("fig14", Fig14)
}

// TcpdumpCeiling regenerates the Section 8.1.2 result: tcpdump with a
// 32 MB buffer captures 1500-byte frames without loss up to about
// 8.5 Gbps on an 11 Gbps-capable path.
func TcpdumpCeiling(seed uint64) (*Result, error) {
	res := &Result{
		ID:     "tcpdump",
		Title:  "Software capture ceiling (tcpdump, 1500B frames, 64B snaplen)",
		Header: []string{"offered_rate", "loss_percent"},
	}
	var ceiling units.BitRate
	for g := 6; g <= 12; g++ {
		rate := units.BitRate(g) * units.Gbps
		k := sim.NewKernel()
		// A small buffer keeps time-to-overflow short; the throughput
		// ceiling itself is buffer-independent.
		e, err := capture.NewEngine(k, capture.Config{
			Method: capture.MethodTcpdump, SnapLen: 64, BufferBytes: 1 << 20,
		})
		if err != nil {
			return nil, err
		}
		st := capture.OfferLoad(k, e, 1500, rate, 500*sim.Millisecond)
		loss := float64(st.LossPercent())
		res.AddRow(rate.String(), loss)
		if loss < 0.01 {
			ceiling = rate
		}
	}
	res.Notef("paper: tcpdump captured without loss until about 8.5 Gbps; the path sustained 11 Gbps")
	res.Notef("measured: lossless ceiling = %v", ceiling)
	return res, nil
}

// tableRow is one Table 1/2 row: frame size, the paper's operating rate,
// and the paper's core count.
type tableRow struct {
	frameSize  int
	paperRate  units.BitRate
	paperCores int
	paperLoss  float64
}

// runTable produces the Table 1/2 reproduction for a truncation length:
// for each frame size it reports the minimum cores sustaining the
// paper's rate at <1% loss (or the loss at 15 cores when the rate is not
// sustainable), plus the maximum sustainable rate with 15 cores.
func runTable(id, title string, snap int, rows []tableRow) (*Result, error) {
	res := &Result{
		ID:     id,
		Title:  title,
		Header: []string{"frame_size_B", "rate", "paper_cores", "min_cores_measured", "loss_percent"},
	}
	const window = 30 * sim.Millisecond
	lossAt := func(frame int, rate units.BitRate, cores int) (float64, error) {
		k := sim.NewKernel()
		host, err := hostsim.New(hostsim.Config{DirtyBackgroundRatio: 60, DirtyRatio: 80})
		if err != nil {
			return 0, err
		}
		e, err := capture.NewEngine(k, capture.Config{
			Method: capture.MethodDPDK, SnapLen: snap, Cores: cores,
			RxQueueDepth: 4096, Host: host,
		})
		if err != nil {
			return 0, err
		}
		st := capture.OfferLoad(k, e, frame, rate, window)
		return float64(st.LossPercent()), nil
	}
	for _, row := range rows {
		minCores := 0
		var loss float64
		for c := 1; c <= 15; c++ {
			l, err := lossAt(row.frameSize, row.paperRate, c)
			if err != nil {
				return nil, err
			}
			if l < 1 {
				minCores, loss = c, l
				break
			}
			loss = l
		}
		coresCell := "infeasible<=15"
		if minCores > 0 {
			coresCell = fmt.Sprintf("%d", minCores)
		}
		res.AddRow(row.frameSize, row.paperRate.String(), row.paperCores, coresCell, loss)
	}
	res.Notef("paper rows (size,rate,cores,loss%%): %v", describeRows(rows))
	res.Notef("shape checks: larger truncation costs more cores; small frames cap the achievable rate")
	return res, nil
}

func describeRows(rows []tableRow) string {
	s := ""
	for i, r := range rows {
		if i > 0 {
			s += "; "
		}
		s += fmt.Sprintf("%dB@%v/%dc/%.2f%%", r.frameSize, r.paperRate, r.paperCores, r.paperLoss)
	}
	return s
}

// Table1 regenerates "200B truncation, 60:80 threshold".
func Table1(seed uint64) (*Result, error) {
	return runTable("table1", "DPDK capture, 200B truncation, 60:80 thresholds", 200, []tableRow{
		{1514, 100 * units.Gbps, 5, 0.67},
		{1024, 100 * units.Gbps, 10, 0.13},
		{512, 60 * units.Gbps, 15, 0.03},
		{128, 15 * units.Gbps, 15, 0.10},
	})
}

// Table2 regenerates "64B truncation, 60:80 threshold".
func Table2(seed uint64) (*Result, error) {
	return runTable("table2", "DPDK capture, 64B truncation, 60:80 thresholds", 64, []tableRow{
		{1514, 100 * units.Gbps, 3, 0.17},
		{1024, 100 * units.Gbps, 5, 0.32},
		{512, 100 * units.Gbps, 15, 0.07},
		{128, 28 * units.Gbps, 15, 0.13},
	})
}

// Fig14 regenerates the Appendix B storage-bottleneck study: summed
// writev latency (bucket upper bounds, tail buckets only) as a function
// of the percentage of free cache memory used, for 10:20 and 20:50
// dirty-ratio thresholds.
func Fig14(seed uint64) (*Result, error) {
	res := &Result{
		ID:     "fig14",
		Title:  "Summed writev latency vs page-cache usage (10:20 vs 20:50 thresholds)",
		Header: []string{"cache_used_percent", "summed_latency_ms_10_20", "summed_latency_ms_20_50"},
	}
	// Fig14 drives hostsim with a manual clock (no kernel), so a
	// nil-clock registry stamps observations at t=0; the latency
	// histograms per threshold pair are the interesting output.
	var reg *obs.Registry
	if Observe {
		reg = obs.NewRegistry(nil)
		res.Metrics = reg
	}
	// The DPDK writer feeds ~8.5 GB/s of pcap data (100 Gbps of 1514B
	// frames truncated to 200B would be less; Appendix B measures the
	// full-rate firehose) in 128-frame writev batches.
	const batchBytes = 128 * (200 + 16)
	run := func(bg, hard int) []float64 {
		host, err := hostsim.New(hostsim.Config{
			FreeCache:            100 * units.GB,
			DirtyBackgroundRatio: bg, DirtyRatio: hard,
		})
		if err != nil {
			panic(err)
		}
		host.Instrument(reg, obs.L("thresholds", fmt.Sprintf("%d:%d", bg, hard)))
		ingestBps := int64(8_500_000_000)
		interval := sim.Duration(int64(sim.Second) * batchBytes / ingestBps)
		var now sim.Time
		out := make([]float64, 0, 26)
		nextPct := 1
		// Once the writer is hard-throttled, cache usage plateaus at
		// dirty_ratio and never reaches the next percentage; cap the
		// virtual time and extend the plateau value across the remaining
		// x positions (the paper's 10:20 curve likewise saturates just
		// past its hard threshold).
		for nextPct <= 25 && now < 30*sim.Second {
			host.Writev(now, batchBytes)
			now += interval // arrival-driven clock; see ablation-thresholds
			used := host.DirtyFraction(now) * 100
			for float64(nextPct) <= used && nextPct <= 25 {
				// Summed tail latency (>=32us buckets) so far, in ms.
				out = append(out, float64(host.WritevHist.SumUpperBounds(32*1024))/1e6)
				nextPct++
			}
		}
		final := float64(host.WritevHist.SumUpperBounds(32*1024)) / 1e6
		for nextPct <= 25 {
			out = append(out, final)
			nextPct++
		}
		return out
	}
	tight := run(10, 20)
	wide := run(20, 50)
	for p := 1; p <= 25; p++ {
		tv, wv := "-", "-"
		if p-1 < len(tight) {
			tv = trimFloat(tight[p-1])
		}
		if p-1 < len(wide) {
			wv = trimFloat(wide[p-1])
		}
		res.Rows = append(res.Rows, []string{fmt.Sprintf("%d", p), tv, wv})
	}
	// The paper's headline comparison: at 21% cache usage, 10:20 sums to
	// ~3283 ms while 20:50 sums to ~13 ms — two orders of magnitude.
	var t21, w21 float64
	if len(tight) >= 21 {
		t21 = tight[20]
	}
	if len(wide) >= 21 {
		w21 = wide[20]
	}
	res.Notef("paper: at 21%% RAM usage, 10:20 summed latency = 3283 ms vs 13 ms for 20:50 (two orders of magnitude)")
	ratio := "unbounded (20:50 shows no tail >=32us in this window)"
	if w21 > 0 {
		ratio = fmt.Sprintf("%.0fx", t21/w21)
	}
	res.Notef("measured: at 21%%, 10:20 = %.1f ms vs 20:50 = %.3f ms (ratio %s)", t21, w21, ratio)
	res.Notef("steep climb begins at the midpoint of (dirty_background_ratio, dirty_ratio), before dirty_ratio")
	return res, nil
}
