// Package experiments regenerates every table and figure in the paper's
// evaluation (and the Section 5 study figures) from the simulated
// substrates. Each experiment is a named function producing a Result —
// a table of rows plus notes recording the paper's reported values next
// to the measured ones, so EXPERIMENTS.md can be audited against the
// harness output.
//
// Absolute numbers are not expected to match a hardware testbed; the
// reproduction target is the shape of each result (who wins, by what
// rough factor, where the crossovers fall).
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Observe enables platform observability inside experiments that support
// it: they attach an obs.Registry (and, where a kernel drives the run, a
// tracer) to their substrates and publish both on the Result. Off by
// default — observability must not perturb the benchmarked hot paths.
// Set it before calling Run/RunMany/RunAll and leave it fixed while
// experiments are in flight: workers read it concurrently.
var Observe bool

// Result is one regenerated table or figure.
type Result struct {
	// ID is the experiment identifier, e.g. "fig2", "table1".
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows is the table body.
	Rows [][]string
	// Notes record paper-vs-measured comparisons and caveats.
	Notes []string
	// Metrics and Trace carry platform observability when the experiment
	// ran with Observe set; nil otherwise.
	Metrics *obs.Registry
	Trace   *obs.Tracer
}

// AddRow appends a row, formatting each cell with %v.
func (r *Result) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	r.Rows = append(r.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render writes an aligned text table with the title and notes.
func (r *Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) error {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := writeRow(r.Header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV emits the result as CSV (header + rows; notes as trailing
// comment-style rows).
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Runner regenerates one experiment.
type Runner func(seed uint64) (*Result, error)

// registry maps experiment ids to runners, populated by the sibling
// files' init functions.
var registry = map[string]Runner{}

func register(id string, fn Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = fn
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the named experiment.
func Run(id string, seed uint64) (*Result, error) {
	fn, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return fn(seed)
}

// RunAll executes every experiment, fanning out across up to
// GOMAXPROCS workers, and returns results in id order. Output is
// byte-identical to a serial run: every experiment builds its own
// kernel, RNG stream, and (with Observe) obs registry from the seed, so
// worker scheduling cannot leak into results.
func RunAll(seed uint64) ([]*Result, error) {
	return RunMany(IDs(), seed, 0)
}

// RunMany executes the given experiments on a bounded worker pool
// (parallel <= 0 means GOMAXPROCS; 1 means strictly serial) and returns
// their results in the order ids were given. Determinism contract: the
// result slice — and every byte of every Result — depends only on (ids,
// seed), never on worker interleaving. On failure it returns the results
// that precede the first (in ids order) failing experiment, exactly as a
// serial run that stopped there would.
func RunMany(ids []string, seed uint64, parallel int) ([]*Result, error) {
	return RunManyWithProgress(ids, seed, parallel, nil)
}

// Progress is one worker-pool transition: Worker started or finished
// experiment ID, with Done of Total already complete across the pool.
// State is "start" or "done".
type Progress struct {
	Worker int
	ID     string
	State  string
	Done   int
	Total  int
}

// RunManyWithProgress is RunMany with a progress callback. The callback
// runs on worker goroutines as experiments start and finish, so it must
// be safe for concurrent use; progress ordering reflects wall-clock
// scheduling and is NOT deterministic — only the results are. A nil
// callback is RunMany exactly.
func RunManyWithProgress(ids []string, seed uint64, parallel int, progress func(Progress)) ([]*Result, error) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(ids) {
		parallel = len(ids)
	}
	results := make([]*Result, len(ids))
	errs := make([]error, len(ids))
	var done atomic.Int64
	runOne := func(worker, i int) {
		if progress != nil {
			progress(Progress{Worker: worker, ID: ids[i], State: "start",
				Done: int(done.Load()), Total: len(ids)})
		}
		results[i], errs[i] = Run(ids[i], seed)
		n := int(done.Add(1))
		if progress != nil {
			progress(Progress{Worker: worker, ID: ids[i], State: "done",
				Done: n, Total: len(ids)})
		}
	}
	if parallel <= 1 {
		for i := range ids {
			runOne(0, i)
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < parallel; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= len(ids) {
						return
					}
					runOne(worker, i)
				}
			}(w)
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return results[:i], fmt.Errorf("experiments: %s: %w", ids[i], err)
		}
	}
	return results, nil
}
