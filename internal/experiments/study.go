package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/units"
)

func init() {
	register("fig2", Fig2)
	register("fig3", Fig3)
	register("fig4", Fig4)
	register("fig5", Fig5)
	register("fig6", Fig6)
	register("portutil", PortUtilization)
}

// Fig2 regenerates the port-distribution figure: uplinks and downlinks
// per production site, from the federation's information model.
func Fig2(seed uint64) (*Result, error) {
	fed := testbed.DefaultFederation(sim.NewKernel(), seed)
	res := &Result{
		ID:     "fig2",
		Title:  "Distribution of ports across all production FABRIC sites",
		Header: []string{"site", "downlinks", "uplinks"},
	}
	minUp, maxUp := math.MaxInt32, 0
	allMoreDown := true
	for _, pc := range fed.PortDistribution() {
		res.AddRow(pc.Site, pc.Downlinks, pc.Uplinks)
		if pc.Uplinks < minUp {
			minUp = pc.Uplinks
		}
		if pc.Uplinks > maxUp {
			maxUp = pc.Uplinks
		}
		if pc.Downlinks <= pc.Uplinks {
			allMoreDown = false
		}
	}
	res.Notef("paper: most sites have a similar number of uplinks; all sites have many more downlinks than uplinks")
	res.Notef("measured: uplinks span %d-%d; downlinks > uplinks at every site: %v", minUp, maxUp, allMoreDown)
	return res, nil
}

// studyRecords generates the slice corpus shared by Figs 3-5.
func studyRecords(seed uint64) []testbed.SliceRecord {
	model := testbed.DefaultWorkloadModel()
	names := testbed.DefaultFederation(sim.NewKernel(), seed).SiteNames()
	return model.Generate(seed, 52*sim.Week, names)
}

// Fig3 regenerates the sites-per-slice distribution (66.5% single site).
func Fig3(seed uint64) (*Result, error) {
	recs := studyRecords(seed)
	h := testbed.SitesPerSliceHistogram(recs)
	res := &Result{
		ID:     "fig3",
		Title:  "FABRIC slices tend to use resources spread across few sites",
		Header: []string{"sites_in_slice", "slices", "percent"},
	}
	total := len(recs)
	for n := 1; n < len(h); n++ {
		if h[n] == 0 {
			continue
		}
		res.AddRow(n, h[n], units.PercentOf(int64(h[n]), int64(total)))
	}
	single := float64(units.PercentOf(int64(h[1]), int64(total)))
	res.Notef("paper: 66.5%% of all FABRIC slices use a single site")
	res.Notef("measured: %.1f%% single-site over %d slices", single, total)
	return res, nil
}

// Fig4 regenerates the slice-lifetime CDF (75% last <= 24 hours).
func Fig4(seed uint64) (*Result, error) {
	recs := studyRecords(seed)
	points := []sim.Duration{
		1 * sim.Hour, 3 * sim.Hour, 6 * sim.Hour, 12 * sim.Hour,
		24 * sim.Hour, 2 * sim.Day, 4 * sim.Day, sim.Week, 4 * sim.Week, 8 * sim.Week,
	}
	cdf := testbed.LifetimeCDF(recs, points)
	res := &Result{
		ID:     "fig4",
		Title:  "Duration of slices on FABRIC (CDF)",
		Header: []string{"lifetime", "fraction_of_slices"},
	}
	labels := []string{"1h", "3h", "6h", "12h", "24h", "2d", "4d", "1w", "4w", "8w"}
	var at24 float64
	for i, p := range cdf {
		res.AddRow(labels[i], p)
		if labels[i] == "24h" {
			at24 = p
		}
	}
	res.Notef("paper: 75%% of slices last for 24 hours")
	res.Notef("measured: %.1f%% of slices last <= 24h", at24*100)
	return res, nil
}

// Fig5 regenerates the concurrent-slices statistics (mean 85, stddev 52,
// max 272).
func Fig5(seed uint64) (*Result, error) {
	recs := studyRecords(seed)
	st := testbed.Concurrency(recs, 52*sim.Week, 6*sim.Hour)
	res := &Result{
		ID:     "fig5",
		Title:  "Number of simultaneously active slices on FABRIC",
		Header: []string{"statistic", "value"},
	}
	res.AddRow("mean", st.Mean)
	res.AddRow("stddev", st.StdDev)
	res.AddRow("max", st.Max)
	res.AddRow("samples", len(st.Series))
	res.Notef("paper: average 85 slices, standard deviation 52, maximum 272")
	res.Notef("measured: mean %.1f, stddev %.1f, max %d", st.Mean, st.StdDev, st.Max)
	return res, nil
}

// Fig6 regenerates the weekly network-utilization series for a year: the
// sum over switch ports of 5-minute byte-rate samples per week, with the
// ramp-up to the Supercomputing week and telemetry-gap weeks. Running a
// year of full switch-level simulation is unnecessary — the figure's
// quantity is a telemetry aggregate, so the series is synthesized from
// the workload model's intensity calendar with per-port noise, scaled so
// the peak week averages the paper's 3.968 Tbps.
func Fig6(seed uint64) (*Result, error) {
	model := testbed.DefaultWorkloadModel()
	r := rng.New(seed ^ 0xF16)
	fed := testbed.DefaultFederation(sim.NewKernel(), seed)
	totalPorts := 0
	for _, s := range fed.Sites() {
		totalPorts += s.Spec.Downlinks + s.Spec.Uplinks
	}
	const weeks = 52
	// Gap weeks ("gray bands"): a few telemetry outages per year.
	gaps := map[int]bool{}
	for len(gaps) < 3 {
		gaps[2+r.Intn(weeks-4)] = true
	}
	// Raw weekly activity: intensity midpoint x noisy per-port factor.
	raw := make([]float64, weeks)
	peak := 0.0
	peakWeek := 0
	for w := 0; w < weeks; w++ {
		base := model.DeadlineIntensityAt(sim.Time(w)*sim.Week + 3*sim.Day)
		// Port-level burstiness: a few ports occasionally run near line
		// rate while the median port stays below 38% utilization.
		act := 0.0
		for p := 0; p < totalPorts; p++ {
			u := 0.05 + 0.3*r.Float64()*r.Float64()
			if r.Bool(0.02) {
				u = 0.8 + 0.2*r.Float64() // occasional line-rate spike
			}
			act += u
		}
		raw[w] = base * act
		if raw[w] > peak {
			peak, peakWeek = raw[w], w
		}
	}
	// Scale so the peak week's average crossing rate is 3.968 Tbps.
	paperPeak := 3.968e12 / 8 // bytes per second
	scale := paperPeak / peak
	res := &Result{
		ID:     "fig6",
		Title:  "Utilization of FABRIC's network over each week of the year",
		Header: []string{"week", "avg_rate", "missing"},
	}
	for w := 0; w < weeks; w++ {
		if gaps[w] {
			res.AddRow(w, "-", true)
			continue
		}
		bps := raw[w] * scale
		res.AddRow(w, units.ByteSize(bps).String()+"/s", false)
	}
	res.Notef("paper: network activity peaked the week before SC'24 at an average of 3.968 Tbps")
	res.Notef("measured: peak at week %d = %s/s (%.3f Tbps); %d gap weeks",
		peakWeek, units.ByteSize(paperPeak), paperPeak*8/1e12, len(gaps))
	res.Notef(fmt.Sprintf("deadline ramp-ups modeled toward weeks %v", model.DeadlineWeeks))
	return res, nil
}

// PortUtilization reproduces the Section 5 answer to (R4.Q1): "50% of
// switch ports have utilization <= 38%, but there are ports that run at
// line rate" — the finding that makes line-rate capture a requirement.
// Per-port peak utilization is drawn from a lognormal calibrated to the
// published median, clipped at line rate.
func PortUtilization(seed uint64) (*Result, error) {
	r := rng.New(seed ^ 0x4041)
	fed := testbed.DefaultFederation(sim.NewKernel(), seed)
	var utils []float64
	for _, s := range fed.Sites() {
		for i := 0; i < s.Spec.Downlinks+s.Spec.Uplinks; i++ {
			u := 0.38 * r.LogNormal(0, 0.8)
			if u > 1 {
				u = 1 // ports running at line rate
			}
			utils = append(utils, u)
		}
	}
	sort.Float64s(utils)
	res := &Result{
		ID:     "portutil",
		Title:  "Distribution of peak switch-port utilization across the federation",
		Header: []string{"percentile", "utilization_percent"},
	}
	q := func(p float64) float64 {
		idx := int(p * float64(len(utils)-1))
		return utils[idx] * 100
	}
	for _, p := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 1.00} {
		res.AddRow(fmt.Sprintf("p%.0f", p*100), q(p))
	}
	atLine := 0
	for _, u := range utils {
		if u >= 1 {
			atLine++
		}
	}
	res.AddRow("ports_at_line_rate", atLine)
	res.Notef("paper: 50%% of switch ports have utilization <= 38%%; some ports run at line rate (100%%)")
	res.Notef("measured: median = %.1f%%; %d of %d ports at line rate", q(0.50), atLine, len(utils))
	res.Notef("implication (R4): the profiler must be able to capture at line rate")
	return res, nil
}
