package experiments

import (
	"fmt"

	"repro/internal/capture"
	patchwork "repro/internal/core"
	"repro/internal/hostsim"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/telemetry"
	"repro/internal/testbed"
	"repro/internal/units"
)

func init() {
	register("ablation-cycling", AblationCycling)
	register("ablation-truncation", AblationTruncation)
	register("ablation-thresholds", AblationThresholds)
	register("ablation-mirror-direction", AblationMirrorDirection)
	register("ablation-methods", AblationMethods)
}

// AblationCycling compares port-selection heuristics on coverage (distinct
// ports visited) and busy-port hit rate (fraction of selections landing
// on the site's busiest third of ports) over many cycles.
func AblationCycling(seed uint64) (*Result, error) {
	k := sim.NewKernel()
	fed, err := testbed.NewFederation(k, []testbed.SiteSpec{{
		Name: "S", Uplinks: 2, Downlinks: 16, DedicatedNICs: 2,
		Cores: 32, RAM: 128 * units.GB, Storage: units.TB,
	}})
	if err != nil {
		return nil, err
	}
	site := fed.Sites()[0]
	store := telemetry.NewStore()
	poller := telemetry.NewPoller(k, store, 30*sim.Second)
	poller.Watch(site.Switch)
	poller.Start()

	// Synthetic skewed load: P1 busiest, decaying down the port list;
	// half the ports idle.
	names := site.Switch.PortNames()
	busy := map[string]float64{}
	for i, n := range names {
		if i < len(names)/2 {
			busy[n] = 1.0 / float64(i+1)
		}
	}
	tick := k.Every(sim.Second, func(sim.Time) {
		for n, w := range busy {
			size := int(w * 1e6)
			if size > 0 {
				_ = site.Switch.Transit(n, switchsim.DirRx, switchsim.Frame{Size: size})
			}
		}
	})
	k.RunUntil(3 * sim.Minute)
	tick.Stop()
	poller.Stop()

	busiestThird := map[string]bool{}
	ranked := store.BusiestPorts("S", 3*sim.Minute)
	for i, pr := range ranked {
		if i < len(names)/3 {
			busiestThird[pr.Key.Port] = true
		}
	}

	res := &Result{
		ID:     "ablation-cycling",
		Title:  "Port-cycling heuristics: coverage vs busy-port bias (30 cycles, 1 mirror)",
		Header: []string{"heuristic", "distinct_ports", "nonidle_coverage", "busy_hits_percent"},
	}
	selectors := []struct {
		name string
		sel  patchwork.PortSelector
	}{
		{"busiest-bias-1/3", &patchwork.BusiestBiasSelector{N: 3}},
		{"all-ports-roundrobin", &patchwork.AllPortsSelector{}},
		{"fixed-P1", &patchwork.FixedSelector{Ports: []string{"P1"}}},
		{"uplinks-only", &patchwork.UplinkSelector{}},
	}
	nonIdle := len(store.NonIdlePorts("S", 3*sim.Minute))
	for _, s := range selectors {
		hist := map[string]int{}
		visited := map[string]bool{}
		visitedNonIdle := map[string]bool{}
		busyHits, picks := 0, 0
		rr := rng.New(seed)
		for cycle := 0; cycle < 30; cycle++ {
			ctx := &patchwork.SelectContext{
				Site: site, Store: store, Candidates: names,
				History: hist, Cycle: cycle, Want: 1, Rand: rr,
				Window: 3 * sim.Minute,
			}
			for _, p := range s.sel.SelectPorts(ctx) {
				hist[p] = cycle
				visited[p] = true
				if busy[p] > 0 {
					visitedNonIdle[p] = true
				}
				if busiestThird[p] {
					busyHits++
				}
				picks++
			}
		}
		cov := "0/0"
		if nonIdle > 0 {
			cov = fmt.Sprintf("%d/%d", len(visitedNonIdle), nonIdle)
		}
		hitPct := 0.0
		if picks > 0 {
			hitPct = float64(busyHits) / float64(picks) * 100
		}
		res.AddRow(s.name, len(visited), cov, hitPct)
	}
	res.Notef("design claim: busiest-bias keeps a high busy-port hit rate without starving other non-idle ports")
	return res, nil
}

// AblationTruncation sweeps the stored snap length at a fixed offered
// load, showing the capture cost of keeping more bytes per frame.
func AblationTruncation(seed uint64) (*Result, error) {
	res := &Result{
		ID:     "ablation-truncation",
		Title:  "Truncation length vs DPDK loss (1024B frames @ 100Gbps, 6 cores)",
		Header: []string{"snaplen_B", "loss_percent", "stored_MB_per_s"},
	}
	for _, snap := range []int{64, 128, 200, 512, 1024} {
		k := sim.NewKernel()
		e, err := capture.NewEngine(k, capture.Config{
			Method: capture.MethodDPDK, SnapLen: snap, Cores: 6,
		})
		if err != nil {
			return nil, err
		}
		st := capture.OfferLoad(k, e, 1024, 100*units.Gbps, 20*sim.Millisecond)
		storedRate := float64(st.StoredBytes) / 0.020 / 1e6
		res.AddRow(snap, float64(st.LossPercent()), storedRate)
	}
	res.Notef("expected shape: loss grows with snap length at fixed cores; smaller truncation trades fidelity for rate")
	return res, nil
}

// AblationThresholds sweeps dirty-ratio threshold pairs at a fixed ingest
// and reports when the writer first stalls.
func AblationThresholds(seed uint64) (*Result, error) {
	res := &Result{
		ID:     "ablation-thresholds",
		Title:  "Dirty-ratio thresholds vs time to first writer stall (8.5 GB/s ingest, 100 GB cache)",
		Header: []string{"thresholds", "first_stall_s", "tail_latency_ms_at_10s"},
	}
	pairs := [][2]int{{10, 20}, {20, 50}, {40, 60}, {60, 80}}
	for _, p := range pairs {
		host, err := hostsim.New(hostsim.Config{
			FreeCache:            100 * units.GB,
			DirtyBackgroundRatio: p[0], DirtyRatio: p[1],
		})
		if err != nil {
			return nil, err
		}
		const chunk = 128 * 216
		ingest := int64(8_500_000_000)
		interval := sim.Duration(int64(sim.Second) * chunk / ingest)
		var now sim.Time
		firstStall := sim.Time(-1)
		// The clock is arrival-driven: frames keep landing at the ingest
		// rate whether or not the writer is stalled (a stalled writer
		// shows up as loss in the capture engine, not as back-pressure on
		// the wire).
		for now < 10*sim.Second {
			host.Writev(now, chunk)
			if firstStall < 0 && host.Stats.ThrottledCalls+host.Stats.BlockedCalls > 0 {
				firstStall = now
			}
			now += interval
		}
		stallCell := ">10"
		if firstStall >= 0 {
			stallCell = trimFloat(firstStall.Seconds())
		}
		res.AddRow(fmt.Sprintf("%d:%d", p[0], p[1]), stallCell,
			float64(host.WritevHist.SumUpperBounds(32*1024))/1e6)
	}
	res.Notef("paper (Appendix B): with 60:80 thresholds the bottleneck arrives after ~8-9 seconds at 8.5 GB/s")
	return res, nil
}

// AblationMirrorDirection compares mirroring both directions of a
// saturated port against a single direction: both-direction mirroring
// overflows the egress channel, single-direction does not.
func AblationMirrorDirection(seed uint64) (*Result, error) {
	res := &Result{
		ID:     "ablation-mirror-direction",
		Title:  "Mirror direction vs clone loss at a line-rate port",
		Header: []string{"directions", "offered_frames", "clone_drops", "loss_percent"},
	}
	for _, both := range []bool{true, false} {
		k := sim.NewKernel()
		fed, err := testbed.NewFederation(k, []testbed.SiteSpec{{
			Name: "S", Uplinks: 1, Downlinks: 4, DedicatedNICs: 1,
			Cores: 8, RAM: 64 * units.GB, Storage: units.TB,
		}})
		if err != nil {
			return nil, err
		}
		sw := fed.Sites()[0].Switch
		dirs := switchsim.DirRx
		label := "rx-only"
		if both {
			dirs = switchsim.DirBoth
			label = "both"
		}
		if _, err := sw.StartMirror("P1", dirs, "P2"); err != nil {
			return nil, err
		}
		// Drive P1 at line rate in both directions for 200 ms.
		lineRate := 100 * units.Gbps
		const frame = 9000
		interval := sim.Duration(lineRate.TransmitNanos(frame))
		for ts := sim.Time(0); ts < 200*sim.Millisecond; ts += interval {
			ts := ts
			k.At(ts, func() {
				_ = sw.Transit("P1", switchsim.DirRx, switchsim.Frame{Size: frame})
				_ = sw.Transit("P1", switchsim.DirTx, switchsim.Frame{Size: frame})
			})
		}
		k.Run()
		m := sw.Mirrors()[0]
		offered := m.Cloned + m.CloneDrops
		loss := 0.0
		if offered > 0 {
			loss = float64(m.CloneDrops) / float64(offered) * 100
		}
		res.AddRow(label, offered, m.CloneDrops, loss)
	}
	res.Notef("paper (Section 6.2.2): samples are incomplete when Mirrored(Tx)+Mirrored(Rx) exceeds the egress channel's rate")
	return res, nil
}

// AblationMethods compares the three capture methods at a mid-range load.
func AblationMethods(seed uint64) (*Result, error) {
	res := &Result{
		ID:     "ablation-methods",
		Title:  "Capture methods at 20 Gbps of 1514B frames (200B snaplen, 2 cores)",
		Header: []string{"method", "loss_percent", "captured_frames"},
	}
	for _, m := range []capture.Method{capture.MethodTcpdump, capture.MethodDPDK, capture.MethodFPGADPDK} {
		k := sim.NewKernel()
		e, err := capture.NewEngine(k, capture.Config{
			Method: m, SnapLen: 200, Cores: 2, BufferBytes: 1 << 20,
		})
		if err != nil {
			return nil, err
		}
		st := capture.OfferLoad(k, e, 1514, 20*units.Gbps, 100*sim.Millisecond)
		res.AddRow(m.String(), float64(st.LossPercent()), st.Captured)
	}
	res.Notef("expected shape: tcpdump saturates far below the DPDK paths; FPGA offload loses no more than host DPDK")
	return res, nil
}
