package experiments

import (
	"bytes"
	"testing"

	"repro/internal/analysis"
)

// renderBytes captures a result's full rendered output plus its CSV —
// the figure artifacts the streamed pipeline must reproduce exactly.
func renderBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// baselineFig runs a figure the pre-streaming way: materialize the full
// acap corpus, then fold it with the in-memory analysis functions.
func baselineFig(t *testing.T, id string, seed uint64) *Result {
	t.Helper()
	switch id {
	case "fig11":
		acaps, err := corpus(seed, 3, 3000, 75)
		if err != nil {
			t.Fatal(err)
		}
		return fig11From(analysis.HeaderStatsBySite(acaps))
	case "fig12":
		acaps, err := corpus(seed, 2, 3000, 75)
		if err != nil {
			t.Fatal(err)
		}
		var all []analysis.Record
		for _, a := range acaps {
			all = append(all, a.Records...)
		}
		return fig12From(analysis.HeaderOccurrence(all))
	case "fig13":
		acaps, err := corpus(seed, 4, 12000, 0)
		if err != nil {
			t.Fatal(err)
		}
		var counts []int
		for _, a := range acaps {
			counts = append(counts, analysis.FlowsInSample(a))
		}
		return fig13From(counts)
	case "fig15":
		acaps, err := corpus(seed, 2, 2500, 60)
		if err != nil {
			t.Fatal(err)
		}
		bySite := map[string][]analysis.Record{}
		var order []string
		for _, a := range acaps {
			if _, ok := bySite[a.Site]; !ok {
				order = append(order, a.Site)
			}
			bySite[a.Site] = append(bySite[a.Site], a.Records...)
		}
		var rows []siteSizeRow
		for _, site := range order {
			recs := bySite[site]
			h := analysis.FrameSizeHistogram(recs)
			jumbo := 0
			for _, r := range recs {
				if r.WireLen > analysis.JumboThreshold {
					jumbo++
				}
			}
			rows = append(rows, siteSizeRow{site: site, hist: h, frames: len(recs), jumbo: jumbo})
		}
		return fig15From(rows)
	case "framesizes":
		acaps, err := corpus(seed, 2, 3000, 75)
		if err != nil {
			t.Fatal(err)
		}
		var all []analysis.Record
		for _, a := range acaps {
			all = append(all, a.Records...)
		}
		return framesizesFrom(analysis.FrameSizeHistogram(all), len(all))
	}
	t.Fatalf("unknown baseline %q", id)
	return nil
}

// TestStreamedFiguresMatchBaseline is the experiment-level equivalence
// gate: each rewired figure, run through the streaming digester, must
// render byte-identically to the materialize-everything baseline.
func TestStreamedFiguresMatchBaseline(t *testing.T) {
	const seed = 4
	for _, id := range []string{"fig11", "fig12", "fig15", "framesizes"} {
		res, err := Run(id, seed)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		got := renderBytes(t, res)
		want := renderBytes(t, baselineFig(t, id, seed))
		if !bytes.Equal(got, want) {
			t.Errorf("%s: streamed output differs from in-memory baseline\n--- streamed ---\n%s\n--- baseline ---\n%s", id, got, want)
		}
	}
}

// TestStreamedFig13MatchesBaseline covers the flow-count figure at a
// reduced frame budget (the registered experiment digests 3.6M frames;
// the contract is identical either way). The streamed side reproduces
// streamDigest's wiring at the smaller scale.
func TestStreamedFig13MatchesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("fig13 corpus is large")
	}
	const seed = 4
	d, err := streamDigest(seed, 4, 12000, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := renderBytes(t, fig13From(d.SampleFlowCounts()))
	want := renderBytes(t, baselineFig(t, "fig13", seed))
	if !bytes.Equal(got, want) {
		t.Errorf("fig13: streamed output differs from in-memory baseline\n--- streamed ---\n%s\n--- baseline ---\n%s", got, want)
	}
}
