package experiments

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/sim"
	"repro/internal/trafficgen"
	"repro/internal/units"
	"repro/internal/wire"
)

func init() {
	register("fig11", Fig11)
	register("fig12", Fig12)
	register("fig13", Fig13)
	register("fig15", Fig15)
	register("framesizes", FrameSizes)
}

// profileCorpusSites is the number of pseudonymized sites in the traffic
// profile corpus (the paper's S0-S29).
const profileCorpusSites = 30

// corpus builds the multi-site acap corpus behind the Section 8.2
// figures the materialize-everything way. The figures themselves run on
// streamDigest; this stays as the in-memory baseline the equivalence
// tests compare against.
// flowCount > 0 pins the number of flows per sample (long flow snippets,
// as a 20s line-rate capture sees); flowCount == 0 draws it from the
// site's profile (for the flow-count figure).
func corpus(seed uint64, samplesPerSite, framesPerSample, flowCount int) ([]*analysis.Acap, error) {
	profiles := trafficgen.MakeSiteProfiles(seed, profileCorpusSites)
	var acaps []*analysis.Acap
	for i, p := range profiles {
		gen := trafficgen.NewGenerator(p, seed*1000+uint64(i))
		for s := 0; s < samplesPerSite; s++ {
			frames, err := gen.Sample(trafficgen.SampleConfig{
				Duration:  20 * sim.Second,
				MaxFrames: framesPerSample,
				FlowCount: flowCount,
			})
			if err != nil {
				return nil, err
			}
			a := &analysis.Acap{Site: p.Site, SampleStartNanos: int64(s) * int64(5*sim.Minute)}
			for _, tf := range frames {
				stored := tf.Data
				if len(stored) > 200 {
					stored = stored[:200]
				}
				a.Records = append(a.Records, analysis.DigestFrame(int64(tf.At), stored, len(tf.Data)))
			}
			acaps = append(acaps, a)
		}
	}
	return acaps, nil
}

// streamDigest runs the same corpus as corpus() through the streaming
// digester in a single pass: frames are generated into a recycled arena,
// digested, and dropped — nothing proportional to the corpus size stays
// resident. The flow table's hot set is bounded; the figures never read
// exact aggregates, so spilled rows are dropped rather than written out.
func streamDigest(seed uint64, samplesPerSite, framesPerSample, flowCount int) (*analysis.Digester, error) {
	profiles := trafficgen.MakeSiteProfiles(seed, profileCorpusSites)
	d := analysis.NewDigester(analysis.DigestOptions{MaxHotFlows: 4096})
	arena := trafficgen.NewFrameArena()
	var frames []trafficgen.TimedFrame
	for i, p := range profiles {
		gen := trafficgen.NewGenerator(p, seed*1000+uint64(i))
		for s := 0; s < samplesPerSite; s++ {
			arena.Reset()
			var err error
			frames, err = gen.SampleInto(trafficgen.SampleConfig{
				Duration:  20 * sim.Second,
				MaxFrames: framesPerSample,
				FlowCount: flowCount,
			}, frames[:0], arena.Alloc)
			if err != nil {
				return nil, err
			}
			d.StartSample(p.Site)
			for _, tf := range frames {
				stored := tf.Data
				if len(stored) > 200 {
					stored = stored[:200]
				}
				if err := d.Frame(int64(tf.At), stored, len(tf.Data)); err != nil {
					return nil, err
				}
			}
			d.EndSample()
		}
	}
	return d, nil
}

// Fig11 regenerates the per-site header-diversity figure: distinct
// headers observed and deepest header stack per site.
func Fig11(seed uint64) (*Result, error) {
	d, err := streamDigest(seed, 3, 3000, 75)
	if err != nil {
		return nil, err
	}
	return fig11From(d.SiteHeaderStats()), nil
}

// fig11From renders the figure from the computed per-site stats.
func fig11From(stats []analysis.SiteHeaderStats) *Result {
	res := &Result{
		ID:     "fig11",
		Title:  "Distinct headers and deepest stack per (anonymized) site",
		Header: []string{"site", "distinct_headers", "max_stack_depth"},
	}
	minD, maxD := 99, 0
	minH, maxH := 99, 0
	for _, s := range stats {
		res.AddRow(s.Site, s.DistinctHeaders, s.MaxStackDepth)
		if s.MaxStackDepth < minD {
			minD = s.MaxStackDepth
		}
		if s.MaxStackDepth > maxD {
			maxD = s.MaxStackDepth
		}
		if s.DistinctHeaders < minH {
			minH = s.DistinctHeaders
		}
		if s.DistinctHeaders > maxH {
			maxH = s.DistinctHeaders
		}
	}
	res.Notef("paper: sites exhibit a range of distinct headers; maximal header prefixes span 6 to 12 headers")
	res.Notef("measured: distinct headers span %d-%d; max stack depth spans %d-%d", minH, maxH, minD, maxD)
	return res
}

// Fig12 regenerates the header-occurrence figure: percentage of frames
// carrying each protocol header, aggregated over all sites.
func Fig12(seed uint64) (*Result, error) {
	d, err := streamDigest(seed, 2, 3000, 75)
	if err != nil {
		return nil, err
	}
	return fig12From(d.HeaderOccurrence()), nil
}

// fig12From renders the figure from the computed occurrence map.
func fig12From(occ map[wire.LayerType]float64) *Result {
	res := &Result{
		ID:     "fig12",
		Title:  "Occurrence of protocol headers in FABRIC traffic",
		Header: []string{"header", "percent_of_frames"},
	}
	type row struct {
		t   wire.LayerType
		pct float64
	}
	var rows []row
	for t, p := range occ {
		rows = append(rows, row{t, p})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].pct != rows[j].pct {
			return rows[i].pct > rows[j].pct
		}
		return rows[i].t < rows[j].t
	})
	for _, r := range rows {
		res.AddRow(r.t.String(), r.pct)
	}
	sh := analysis.Shares(occ)
	res.Notef("paper: Ethernet exceeds 100%% (inner Ethernet frames); IPv4 dominant; IPv6 = 1.93%% of frames; TCP most prevalent; most traffic VLAN/MPLS tagged")
	res.Notef("measured: Ethernet %.1f%%, IPv4 %.1f%%, IPv6 %.2f%%, TCP %.1f%%, VLAN %.1f%%, MPLS %.1f%%",
		sh.EthPercent, sh.IPv4Percent, sh.IPv6Percent, sh.TCPPercent, sh.VLANPercent, sh.MPLSPercent)
	return res
}

// Fig13 regenerates the flows-per-sample frequency figure.
func Fig13(seed uint64) (*Result, error) {
	d, err := streamDigest(seed, 4, 30000, 0)
	if err != nil {
		return nil, err
	}
	return fig13From(d.SampleFlowCounts()), nil
}

// fig13From renders the figure from the per-sample flow counts.
func fig13From(counts []int) *Result {
	h := analysis.FlowCountHistogram(counts)
	res := &Result{
		ID:     "fig13",
		Title:  "Frequency of flow counts per 20s traffic sample",
		Header: []string{"flows_in_sample", "samples"},
	}
	labels := flowBucketLabels()
	for i, c := range h {
		res.AddRow(labels[i], c)
	}
	below3000 := 0
	for _, c := range counts {
		if c < 3000 {
			below3000++
		}
	}
	res.Notef("paper: most samples have fewer than 3,000 distinct flows; a handful exceed 20,000")
	res.Notef("measured: %d/%d samples below 3,000 flows; max sample = %d flows", below3000, len(counts), maxOf(counts))
	return res
}

func flowBucketLabels() []string {
	b := analysis.FlowCountBuckets
	out := make([]string, len(b)+1)
	out[0] = fmt.Sprintf("<=%d", b[0])
	for i := 1; i < len(b); i++ {
		out[i] = fmt.Sprintf("%d-%d", b[i-1]+1, b[i])
	}
	out[len(b)] = fmt.Sprintf(">%d", b[len(b)-1])
	return out
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// siteSizeRow is one site's frame-size view for fig15From.
type siteSizeRow struct {
	site   string
	hist   []int
	frames int
	jumbo  int
}

// Fig15 regenerates the per-site frame-size distribution (Appendix C).
func Fig15(seed uint64) (*Result, error) {
	d, err := streamDigest(seed, 2, 2500, 60)
	if err != nil {
		return nil, err
	}
	var rows []siteSizeRow
	for _, site := range d.SiteOrder() {
		h, frames, jumbo, _ := d.SiteFrameSizeHist(site)
		rows = append(rows, siteSizeRow{site: site, hist: h, frames: frames, jumbo: jumbo})
	}
	return fig15From(rows), nil
}

// fig15From renders the figure from per-site histograms.
func fig15From(rows []siteSizeRow) *Result {
	header := []string{"site"}
	for i := 0; i <= len(analysis.FrameSizeBuckets); i++ {
		header = append(header, analysis.FrameSizeBucketLabel(i))
	}
	header = append(header, "jumbo_pct")
	res := &Result{
		ID:     "fig15",
		Title:  "Distribution of frame sizes at different (pseudonymized) sites",
		Header: header,
	}
	jumboSites, smallSites := 0, 0
	for _, sr := range rows {
		row := []any{sr.site}
		for _, c := range sr.hist {
			row = append(row, units.PercentOf(int64(c), int64(sr.frames)).String())
		}
		jumbo := 0.0
		if sr.frames > 0 {
			jumbo = float64(sr.jumbo) / float64(sr.frames) * 100
		}
		row = append(row, trimFloat(jumbo))
		res.AddRow(row...)
		if jumbo > 50 {
			jumboSites++
		}
		if jumbo < 20 {
			smallSites++
		}
	}
	res.Notef("paper: significant variety across sites; several sites notable for jumbo frames, most carry a proportion of smaller packets")
	res.Notef("measured: %d sites majority-jumbo, %d sites mostly sub-jumbo, of %d", jumboSites, smallSites, len(rows))
	return res
}

// FrameSizes regenerates the Section 8.2 aggregate frame-size breakdown:
// 1519-2047 B = 74.7%, 65-127 B = 14.15%, 128-255 B = 5.79%.
func FrameSizes(seed uint64) (*Result, error) {
	d, err := streamDigest(seed, 2, 3000, 75)
	if err != nil {
		return nil, err
	}
	return framesizesFrom(d.FrameSizeHist(), d.Frames()), nil
}

// framesizesFrom renders the breakdown from the aggregate histogram.
func framesizesFrom(h []int, total int) *Result {
	res := &Result{
		ID:     "framesizes",
		Title:  "Aggregate frame-size distribution across FABRIC",
		Header: []string{"bucket", "frames", "percent"},
	}
	var jumboPct, ackPct, smallPct float64
	for i, c := range h {
		pct := float64(units.PercentOf(int64(c), int64(total)))
		res.AddRow(analysis.FrameSizeBucketLabel(i), c, pct)
		switch analysis.FrameSizeBucketLabel(i) {
		case "1519-2047":
			jumboPct = pct
		case "65-127":
			ackPct = pct
		case "128-255":
			smallPct = pct
		}
	}
	res.Notef("paper: 1519-2047B = 74.7%%, 65-127B = 14.15%%, 128-255B = 5.79%%")
	res.Notef("measured: 1519-2047B = %.1f%%, 65-127B = %.1f%%, 128-255B = %.1f%%", jumboPct, ackPct, smallPct)
	return res
}
