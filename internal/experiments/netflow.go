package experiments

import (
	"encoding/binary"

	"repro/internal/analysis"
	"repro/internal/netflow"
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/trafficgen"
)

func init() {
	register("ablation-netflow", AblationNetFlow)
}

// AblationNetFlow reproduces the Section 4 motivation experiment: the
// authors collected NetFlow inside a FABRIC slice "to assess the detail
// we could obtain" and concluded that switch-style flow export cannot
// serve a shared testbed — it neither separates slices that reuse the
// same private addresses nor reveals encapsulation structure.
//
// The experiment runs one synthetic capture through both pipelines. A
// second slice is simulated by replaying the same frames under a
// different VLAN tag — exactly the address-reuse scenario the paper
// describes ("even if the same 10/8 addresses are used in different
// slices, they are treated as different flows" by Patchwork).
func AblationNetFlow(seed uint64) (*Result, error) {
	gen := trafficgen.NewGenerator(trafficgen.MakeSiteProfiles(seed, 1)[0], seed)
	arena := trafficgen.NewFrameArena()
	frames, err := gen.SampleInto(trafficgen.SampleConfig{
		Duration: 20 * sim.Second, MaxFrames: 3000, FlowCount: 150,
	}, nil, arena.Alloc)
	if err != nil {
		return nil, err
	}

	exporter := netflow.NewExporter(netflow.Config{})
	d := analysis.NewDigester(analysis.DigestOptions{MaxHotFlows: 4096})
	d.StartSample("S")
	feed := func(at sim.Time, data []byte) error {
		exporter.DeliverFrame(at, switchsim.NewFrame(data))
		return d.Frame(int64(at), data, len(data))
	}
	var clone []byte // retag scratch, reused across frames
	for _, tf := range frames {
		if err := feed(tf.At, tf.Data); err != nil {
			return nil, err
		}
		// The second slice: identical traffic under another VLAN.
		clone = append(clone[:0], tf.Data...)
		retagVLAN(clone, 3999)
		if err := feed(tf.At+sim.Microsecond, clone); err != nil {
			return nil, err
		}
	}
	exporter.FlushAll()

	pwFlows := d.EndSample()
	nfFlows := exporter.DistinctConversations()
	census := d.EncapCensus()

	res := &Result{
		ID:     "ablation-netflow",
		Title:  "NetFlow-style export vs Patchwork analysis on two slices sharing 10/8 addresses",
		Header: []string{"metric", "netflow_baseline", "patchwork"},
	}
	res.AddRow("distinct_conversations_observed", nfFlows, pwFlows)
	res.AddRow("slices_distinguishable", "no (5-tuple only)", "yes (VLAN/MPLS tags in key)")
	res.AddRow("encapsulation_patterns_visible", 0, len(census))
	res.AddRow("per_frame_record", "aggregate counters", "full header stack (acap)")
	res.AddRow("frames_metered", exporter.FramesSeen, d.Frames())
	res.Notef("paper (Section 4): switch-sourced flow information \"does not distinguish between testbed users and provides coarse statistics\"")
	res.Notef("measured: the two slices collapse to %d NetFlow flows but remain %d distinct Patchwork flows (%.1fx undercount)",
		nfFlows, pwFlows, float64(pwFlows)/float64(maxInt1(nfFlows)))
	return res, nil
}

func maxInt1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// retagVLAN rewrites the outer 802.1Q VLAN id in place (the tag follows
// the 14-byte Ethernet header).
func retagVLAN(data []byte, vlan uint16) {
	if len(data) < 18 {
		return
	}
	tci := binary.BigEndian.Uint16(data[14:16])
	tci = tci&0xF000 | vlan&0x0FFF
	binary.BigEndian.PutUint16(data[14:16], tci)
}
