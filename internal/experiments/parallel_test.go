package experiments

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// cheapIDs is a fast cross-section of the registry (sub-second even on
// one core) used where the full suite would dominate test time.
var cheapIDs = []string{
	"fig2", "fig3", "fig4", "fig5", "fig6",
	"portutil", "ablation-cycling", "ablation-netflow",
}

// suiteCSV renders every result as its experiment CSV, prefixed by id —
// the byte-level artifact the determinism contract is stated over.
func suiteCSV(t *testing.T, results []*Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range results {
		fmt.Fprintf(&buf, "## %s\n", r.ID)
		if err := r.WriteCSV(&buf); err != nil {
			t.Fatalf("%s: CSV: %v", r.ID, err)
		}
	}
	return buf.Bytes()
}

func mustRunMany(t *testing.T, ids []string, seed uint64, parallel int) []byte {
	t.Helper()
	results, err := RunMany(ids, seed, parallel)
	if err != nil {
		t.Fatalf("RunMany(parallel=%d): %v", parallel, err)
	}
	if len(results) != len(ids) {
		t.Fatalf("RunMany(parallel=%d) returned %d results, want %d", parallel, len(results), len(ids))
	}
	for i, r := range results {
		if r.ID != ids[i] {
			t.Fatalf("result %d id = %q, want %q (order not deterministic)", i, r.ID, ids[i])
		}
	}
	return suiteCSV(t, results)
}

// TestParallelMatchesSerial is the harness determinism gate: a parallel
// run must produce byte-identical CSVs to a serial run for every
// experiment id, and two parallel runs with the same seed must be
// identical to each other (catching map-iteration order and shared-RNG
// leaks that a single comparison could miss). Short mode covers a fast
// cross-section; the full run covers every registered experiment.
func TestParallelMatchesSerial(t *testing.T) {
	ids := cheapIDs
	if !testing.Short() {
		ids = IDs()
	}
	serial := mustRunMany(t, ids, 7, 1)
	par := mustRunMany(t, ids, 7, 8)
	if !bytes.Equal(serial, par) {
		t.Fatalf("parallel output differs from serial (lens %d vs %d):\n%s",
			len(serial), len(par), firstDiff(serial, par))
	}
	par2 := mustRunMany(t, ids, 7, 8)
	if !bytes.Equal(par, par2) {
		t.Fatalf("two parallel runs with the same seed differ:\n%s", firstDiff(par, par2))
	}
}

// TestParallelObserve: with Observe set, every result still carries its
// own registry/tracer and output stays serial-identical (per-experiment
// obs must not couple concurrent runs).
func TestParallelObserve(t *testing.T) {
	Observe = true
	defer func() { Observe = false }()
	serial := mustRunMany(t, cheapIDs, 3, 1)
	par := mustRunMany(t, cheapIDs, 3, 4)
	if !bytes.Equal(serial, par) {
		t.Fatalf("observed parallel output differs from serial:\n%s", firstDiff(serial, par))
	}
}

// TestRunManyErrorTruncation: a failing id yields the results preceding
// it in ids order, regardless of worker interleaving.
func TestRunManyErrorTruncation(t *testing.T) {
	ids := []string{"fig2", "fig6", "no-such-experiment", "portutil"}
	results, err := RunMany(ids, 1, 4)
	if err == nil {
		t.Fatal("want error for unknown id")
	}
	if len(results) != 2 {
		t.Fatalf("results before failure = %d, want 2", len(results))
	}
	for i, want := range []string{"fig2", "fig6"} {
		if results[i] == nil || results[i].ID != want {
			t.Fatalf("result %d = %v, want %s", i, results[i], want)
		}
	}
}

// firstDiff locates the first divergent line for a readable failure.
func firstDiff(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  serial:   %s\n  parallel: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("one output is a prefix of the other (%d vs %d lines)", len(al), len(bl))
}

// TestRunManyWithProgress checks the progress callback contract: every
// experiment reports a start and a done from worker goroutines, the
// done counter ends at the total, and reporting progress does not
// perturb the results.
func TestRunManyWithProgress(t *testing.T) {
	ids := cheapIDs[:4]
	baseline := mustRunMany(t, ids, 7, 1)

	var mu sync.Mutex
	starts := map[string]int{}
	dones := map[string]int{}
	final := 0
	results, err := RunManyWithProgress(ids, 7, 4, func(p Progress) {
		if p.State != "start" && p.State != "done" {
			t.Errorf("unknown progress state %q", p.State)
		}
		if p.Total != len(ids) {
			t.Errorf("progress total = %d, want %d", p.Total, len(ids))
		}
		mu.Lock()
		defer mu.Unlock()
		switch p.State {
		case "start":
			starts[p.ID]++
		case "done":
			dones[p.ID]++
			if p.Done > final {
				final = p.Done
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if starts[id] != 1 || dones[id] != 1 {
			t.Fatalf("%s: starts=%d dones=%d, want 1/1", id, starts[id], dones[id])
		}
	}
	if final != len(ids) {
		t.Fatalf("final done count = %d, want %d", final, len(ids))
	}
	if got := suiteCSV(t, results); !bytes.Equal(got, baseline) {
		t.Fatal("progress callback changed results")
	}
}
