package obs

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// escapeLabelValue escapes a label value for the Prometheus text format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promLabels renders {a="b",c="d"}, with extra appended after the
// point's own labels (used for histogram le).
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// promValue renders a sample value, pinning the non-finite cases to the
// Prometheus text-format spellings rather than trusting the formatter's
// defaults (a regression here would corrupt every scrape of the file).
func promValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promTimestampMillis converts a sim time to the Prometheus text
// format's millisecond timestamp. Virtual time stands in for wall time:
// that is what makes the export deterministic.
func promTimestampMillis(t sim.Time) int64 { return int64(t) / int64(sim.Millisecond) }

// WritePrometheus renders the registry in the Prometheus text exposition
// format, families sorted by name, each sample stamped with its last
// observation's sim time in milliseconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheusPoints(w, r.Snapshot())
}

// WritePrometheusPoints renders a frozen snapshot (as returned by
// Snapshot) in the Prometheus text exposition format. Splitting the
// renderer from the registry lets a consistent snapshot taken on the
// simulation goroutine be served later from any goroutine — the live
// telemetry server's /metrics endpoint works this way.
func WritePrometheusPoints(w io.Writer, points []MetricPoint) error {
	bw := bufio.NewWriter(w)
	var lastFamily string
	for _, mp := range points {
		if mp.Name != lastFamily {
			lastFamily = mp.Name
			if mp.Help != "" {
				if _, err := fmt.Fprintf(bw, "# HELP %s %s\n", mp.Name, mp.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "# TYPE %s %s\n", mp.Name, mp.Kind); err != nil {
				return err
			}
		}
		ts := promTimestampMillis(mp.At)
		switch mp.Kind {
		case KindHistogram:
			cum := int64(0)
			for _, b := range mp.Buckets {
				cum += b.Count
				if _, err := fmt.Fprintf(bw, "%s_bucket%s %d %d\n", mp.Name,
					promLabels(mp.Labels, L("le", strconv.FormatInt(b.UpperBound, 10))), cum, ts); err != nil {
					return err
				}
			}
			// Guard the +Inf bucket and _count against a point whose
			// count lags its bucket sum (a snapshot taken mid-Observe):
			// the exposition must stay cumulative-monotonic.
			count := int64(mp.Value)
			if cum > count {
				count = cum
			}
			if _, err := fmt.Fprintf(bw, "%s_bucket%s %d %d\n", mp.Name,
				promLabels(mp.Labels, L("le", "+Inf")), count, ts); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(bw, "%s_sum%s %d %d\n", mp.Name, promLabels(mp.Labels), mp.Sum, ts); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(bw, "%s_count%s %d %d\n", mp.Name, promLabels(mp.Labels), count, ts); err != nil {
				return err
			}
			for _, pq := range [...]struct {
				suffix string
				q      float64
			}{{"_p50", 0.5}, {"_p99", 0.99}} {
				if _, err := fmt.Fprintf(bw, "%s%s%s %s %d\n", mp.Name, pq.suffix,
					promLabels(mp.Labels), promValue(BucketQuantile(pq.q, mp.Buckets)), ts); err != nil {
					return err
				}
			}
		default:
			if _, err := fmt.Fprintf(bw, "%s%s %s %d\n", mp.Name, promLabels(mp.Labels), promValue(mp.Value), ts); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteMetricsJSONL emits one JSON object per instrument: name, kind,
// labels, value (plus sum/buckets for histograms), and the sim-time
// stamp in nanoseconds.
func (r *Registry) WriteMetricsJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, mp := range r.Snapshot() {
		name, _ := json.Marshal(mp.Name)
		if _, err := fmt.Fprintf(bw, `{"metric":%s,"kind":"%s"`, name, mp.Kind); err != nil {
			return err
		}
		if len(mp.Labels) > 0 {
			if _, err := bw.WriteString(`,"labels":{`); err != nil {
				return err
			}
			for i, l := range mp.Labels {
				if i > 0 {
					if err := bw.WriteByte(','); err != nil {
						return err
					}
				}
				k, _ := json.Marshal(l.Key)
				v, _ := json.Marshal(l.Value)
				if _, err := fmt.Fprintf(bw, "%s:%s", k, v); err != nil {
					return err
				}
			}
			if err := bw.WriteByte('}'); err != nil {
				return err
			}
		}
		switch mp.Kind {
		case KindHistogram:
			if _, err := fmt.Fprintf(bw, `,"count":%d,"sum":%d,"buckets":[`, int64(mp.Value), mp.Sum); err != nil {
				return err
			}
			for i, b := range mp.Buckets {
				if i > 0 {
					if err := bw.WriteByte(','); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(bw, `{"le":%d,"n":%d}`, b.UpperBound, b.Count); err != nil {
					return err
				}
			}
			if err := bw.WriteByte(']'); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(bw, `,"value":%s`, promValue(mp.Value)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, ",\"sim_ns\":%d}\n", int64(mp.At)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCSV emits a summary table: metric, kind, labels (k=v;k=v),
// value, sum, count, p50, p99, sim_ns. Counters and gauges leave
// sum/count and the quantile columns empty; histograms put the
// observation count in count and interpolated quantiles in p50/p99.
func (r *Registry) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"metric", "kind", "labels", "value", "sum", "count", "p50", "p99", "sim_ns"}); err != nil {
		return err
	}
	for _, mp := range r.Snapshot() {
		parts := make([]string, len(mp.Labels))
		for i, l := range mp.Labels {
			parts[i] = l.Key + "=" + l.Value
		}
		row := []string{mp.Name, mp.Kind.String(), strings.Join(parts, ";")}
		switch mp.Kind {
		case KindHistogram:
			row = append(row, "", strconv.FormatInt(mp.Sum, 10), strconv.FormatInt(int64(mp.Value), 10),
				promValue(BucketQuantile(0.5, mp.Buckets)), promValue(BucketQuantile(0.99, mp.Buckets)))
		default:
			row = append(row, promValue(mp.Value), "", "", "", "")
		}
		row = append(row, strconv.FormatInt(int64(mp.At), 10))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CollectKernel registers gauges exposing the simulation kernel's
// internals — events processed, pending queue length, queue
// high-watermark, and the maximum events executed at a single timestamp
// — refreshed by a collector at every export.
func CollectKernel(r *Registry, k *sim.Kernel, labels ...Label) {
	if r == nil || k == nil {
		return
	}
	r.Help("sim_events_processed", "events executed by the discrete-event kernel")
	r.Help("sim_queue_pending", "events currently scheduled (including unreaped cancellations)")
	r.Help("sim_queue_high_watermark", "maximum event-queue length observed")
	r.Help("sim_max_events_per_tick", "maximum events executed at one virtual timestamp")
	processed := r.Gauge("sim_events_processed", labels...)
	pending := r.Gauge("sim_queue_pending", labels...)
	highWater := r.Gauge("sim_queue_high_watermark", labels...)
	perTick := r.Gauge("sim_max_events_per_tick", labels...)
	r.RegisterCollector(func() {
		processed.Set(float64(k.EventsProcessed()))
		pending.Set(float64(k.Pending()))
		highWater.Set(float64(k.QueueHighWatermark()))
		perTick.Set(float64(k.MaxEventsPerTick()))
	})
}
