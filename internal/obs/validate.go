package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ValidateExposition parses a Prometheus text-format exposition and
// returns the number of sample lines. It checks the syntax every scrape
// consumer depends on — metric-name charset, balanced and escaped label
// quoting, parseable values and timestamps, one TYPE per family — plus
// the histogram invariant that _bucket samples of one series are
// cumulative-monotonic and capped by the +Inf bucket. CI runs it over
// both the exported artifacts and a live /metrics scrape, so a renderer
// regression fails the build instead of corrupting every scrape.
func ValidateExposition(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	typeOf := map[string]string{}    // family -> TYPE
	lastBucket := map[string]int64{} // series (name+labels sans le) -> last cumulative value
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return samples, fmt.Errorf("line %d: malformed TYPE comment", lineNo)
			}
			name, kind := fields[2], fields[3]
			if !validMetricName(name) {
				return samples, fmt.Errorf("line %d: bad metric name %q", lineNo, name)
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return samples, fmt.Errorf("line %d: unknown TYPE %q", lineNo, kind)
			}
			if prev, dup := typeOf[name]; dup {
				return samples, fmt.Errorf("line %d: duplicate TYPE for %s (already %s)", lineNo, name, prev)
			}
			typeOf[name] = kind
		case strings.HasPrefix(line, "#"):
			continue // HELP and free-form comments
		default:
			name, labels, value, rest, perr := parseSample(line)
			if perr != nil {
				return samples, fmt.Errorf("line %d: %v", lineNo, perr)
			}
			if rest != "" {
				if _, terr := strconv.ParseInt(rest, 10, 64); terr != nil {
					return samples, fmt.Errorf("line %d: bad timestamp %q", lineNo, rest)
				}
			}
			samples++
			if base, ok := strings.CutSuffix(name, "_bucket"); ok && typeOf[base] == "histogram" {
				_, others := splitLE(labels)
				key := base + "{" + others + "}"
				cum := int64(value)
				if last, seen := lastBucket[key]; seen && cum < last {
					return samples, fmt.Errorf("line %d: histogram %s not cumulative-monotonic (%d after %d)",
						lineNo, key, cum, last)
				}
				lastBucket[key] = cum
			}
		}
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	return samples, nil
}

// parseSample splits one sample line into name, raw label body, value,
// and whatever trails the value (a timestamp, validated by the caller).
func parseSample(line string) (name, labels string, value float64, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", 0, "", fmt.Errorf("sample without value: %q", line)
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", 0, "", fmt.Errorf("bad metric name %q", name)
	}
	body := line[i:]
	if body[0] == '{' {
		end, lerr := labelEnd(body)
		if lerr != nil {
			return "", "", 0, "", lerr
		}
		labels = body[1 : end-1]
		body = body[end:]
	}
	fields := strings.Fields(body)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, "", fmt.Errorf("want value [timestamp] after %q, got %q", name, body)
	}
	value, verr := strconv.ParseFloat(fields[0], 64)
	if verr != nil {
		return "", "", 0, "", fmt.Errorf("bad value %q", fields[0])
	}
	if len(fields) == 2 {
		rest = fields[1]
	}
	return name, labels, value, rest, nil
}

// labelEnd scans a {...} label body starting at s[0]=='{' and returns
// the index just past the closing brace, honoring quoted values with
// backslash escapes.
func labelEnd(s string) (int, error) {
	inQuote, escaped := false, false
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			escaped = false
		case inQuote && c == '\\':
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case !inQuote && c == '}':
			return i + 1, nil
		}
	}
	return 0, fmt.Errorf("unterminated label set in %q", s)
}

// splitLE removes the le label from a raw label body, returning its
// value and the remaining labels (order preserved) so bucket series of
// one instrument share an identity.
func splitLE(labels string) (le, others string) {
	if labels == "" {
		return "", ""
	}
	var kept []string
	for _, part := range splitLabels(labels) {
		if v, ok := strings.CutPrefix(part, "le="); ok {
			le = strings.Trim(v, `"`)
			continue
		}
		kept = append(kept, part)
	}
	return le, strings.Join(kept, ",")
}

// splitLabels splits a raw label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	start, inQuote, escaped := 0, false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			escaped = false
		case inQuote && c == '\\':
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case !inQuote && c == ',':
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
