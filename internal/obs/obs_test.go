package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry returned non-nil instruments")
	}
	// All of these must be safe no-ops.
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.SetMax(2)
	h.Observe(3)
	r.Help("x", "help")
	r.RegisterCollector(func() {})
	r.Collect()
	if got := r.Snapshot(); got != nil {
		t.Errorf("nil registry snapshot = %v, want nil", got)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Errorf("nil instruments reported non-zero values")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	now := sim.Time(0)
	r := NewRegistry(func() sim.Time { return now })
	c := r.Counter("frames_total", L("site", "STAR"))
	now = 10
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if c.LastUpdate() != 10 {
		t.Errorf("counter stamp = %v, want 10", c.LastUpdate())
	}
	// Same (name, labels) resolves to the same instrument, label order
	// irrelevant.
	if r.Counter("frames_total", L("site", "STAR")) != c {
		t.Errorf("re-lookup returned a different instrument")
	}

	g := r.Gauge("depth")
	g.Set(7)
	g.SetMax(3) // lower: ignored
	if g.Value() != 7 {
		t.Errorf("gauge = %v, want 7", g.Value())
	}
	g.SetMax(11)
	if g.Value() != 11 {
		t.Errorf("gauge after SetMax = %v, want 11", g.Value())
	}

	h := r.Histogram("lat_ns")
	h.Observe(1)    // bucket [1,2)
	h.Observe(1000) // bucket [512,1024)... 1000 -> bits.Len(1000)=10 -> bucket 9 [512,1024)
	h.Observe(0)    // clamps into the first bucket
	if h.Count() != 3 || h.Sum() != 1001 {
		t.Errorf("hist count=%d sum=%d, want 3/1001", h.Count(), h.Sum())
	}
	if h.Bucket(0) != 2 || h.Bucket(9) != 1 {
		t.Errorf("hist buckets: b0=%d b9=%d, want 2/1", h.Bucket(0), h.Bucket(9))
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry(nil)
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Errorf("gauge lookup of a counter name did not panic")
		}
	}()
	r.Gauge("m")
}

func TestHelpBeforeFirstInstrument(t *testing.T) {
	r := NewRegistry(nil)
	r.Help("g", "a gauge")
	r.Gauge("g").Set(1) // must not panic on kind mismatch
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# HELP g a gauge") ||
		!strings.Contains(buf.String(), "# TYPE g gauge") {
		t.Errorf("prometheus output missing help/type:\n%s", buf.String())
	}
}

func TestPrometheusExport(t *testing.T) {
	now := sim.Time(2 * sim.Second)
	r := NewRegistry(func() sim.Time { return now })
	r.Help("capture_frames_total", "frames captured")
	r.Counter("capture_frames_total", L("method", "dpdk"), L("site", "STAR")).Add(12)
	r.Gauge("queue_depth").Set(3.5)
	h := r.Histogram("writev_ns")
	h.Observe(5) // bucket [4,8) -> le=8
	h.Observe(5)
	h.Observe(100) // bucket [64,128) -> le=128

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP capture_frames_total frames captured",
		"# TYPE capture_frames_total counter",
		`capture_frames_total{method="dpdk",site="STAR"} 12 2000`,
		"queue_depth 3.5 2000",
		`writev_ns_bucket{le="8"} 2 2000`,
		`writev_ns_bucket{le="128"} 3 2000`, // cumulative
		`writev_ns_bucket{le="+Inf"} 3 2000`,
		"writev_ns_sum 110 2000",
		"writev_ns_count 3 2000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestExportDeterminism(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry(nil)
		// Insertion order differs from sorted order on purpose.
		r.Counter("z_total", L("b", "2")).Inc()
		r.Counter("a_total").Add(3)
		r.Counter("z_total", L("a", "1")).Inc()
		r.Histogram("h").Observe(9)
		r.Gauge("g").Set(1)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("prometheus export not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	// Sorted family order: a_total before g before h before z_total, and
	// z_total's instruments sorted by label identity.
	out := a.String()
	if strings.Index(out, "a_total") > strings.Index(out, "z_total") {
		t.Errorf("families not sorted:\n%s", out)
	}
	if strings.Index(out, `z_total{a="1"}`) > strings.Index(out, `z_total{b="2"}`) {
		t.Errorf("instruments not sorted by labels:\n%s", out)
	}
}

func TestJSONLAndCSVExport(t *testing.T) {
	r := NewRegistry(nil)
	r.Counter("c_total", L("k", `va"lue`)).Add(2)
	r.Histogram("h").Observe(3)
	var jl bytes.Buffer
	if err := r.WriteMetricsJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jl.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl lines = %d, want 2:\n%s", len(lines), jl.String())
	}
	if !strings.Contains(lines[0], `"metric":"c_total"`) || !strings.Contains(lines[0], `"value":2`) {
		t.Errorf("jsonl counter line wrong: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"buckets":[{"le":4,"n":1}]`) {
		t.Errorf("jsonl histogram line wrong: %s", lines[1])
	}

	var cs bytes.Buffer
	if err := r.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	csvOut := cs.String()
	if !strings.HasPrefix(csvOut, "metric,kind,labels,value,sum,count,p50,p99,sim_ns") {
		t.Errorf("csv header wrong:\n%s", csvOut)
	}
	if !strings.Contains(csvOut, "c_total,counter") || !strings.Contains(csvOut, "h,histogram") {
		t.Errorf("csv rows missing:\n%s", csvOut)
	}
}

func TestHistogramQuantile(t *testing.T) {
	cases := []struct {
		name    string
		observe []int64
		q       float64
		lo, hi  float64 // acceptable interpolation range
	}{
		{"empty", nil, 0.5, math.NaN(), math.NaN()},
		{"single-bucket-median", []int64{5, 5, 5, 5}, 0.5, 4, 8},
		{"single-observation", []int64{100}, 0.99, 64, 128},
		{"sub-one-lands-in-first-bucket", []int64{0, 0, 0}, 0.5, 0, 2},
		{"two-buckets-p50-in-first", []int64{2, 2, 2, 1000}, 0.5, 2, 4},
		{"two-buckets-p99-in-last", []int64{2, 2, 2, 1000}, 0.99, 512, 1024},
		{"q-clamped-low", []int64{5}, -1, 4, 8},
		{"q-clamped-high", []int64{5}, 2, 4, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry(nil)
			h := r.Histogram("q")
			for _, v := range tc.observe {
				h.Observe(v)
			}
			got := h.Quantile(tc.q)
			if math.IsNaN(tc.lo) {
				if !math.IsNaN(got) {
					t.Fatalf("Quantile(%v) = %v, want NaN", tc.q, got)
				}
				return
			}
			if got < tc.lo || got > tc.hi {
				t.Errorf("Quantile(%v) = %v, want in [%v, %v]", tc.q, got, tc.lo, tc.hi)
			}
		})
	}
	// Interpolation is monotone in q within one bucket.
	r := NewRegistry(nil)
	h := r.Histogram("mono")
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	if p25, p75 := h.Quantile(0.25), h.Quantile(0.75); p25 >= p75 {
		t.Errorf("quantiles not monotone: p25=%v p75=%v", p25, p75)
	}
	// A nil histogram reports NaN rather than panicking.
	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Error("nil histogram quantile should be NaN")
	}
}

func TestPrometheusHistogramQuantiles(t *testing.T) {
	r := NewRegistry(nil)
	h := r.Histogram("lat", L("site", "STAR"))
	for i := 0; i < 100; i++ {
		h.Observe(5) // bucket [4,8)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `lat_p50{site="STAR"} 6 0`) {
		t.Errorf("missing p50 sample:\n%s", out)
	}
	if !strings.Contains(out, `lat_p99{site="STAR"} `) {
		t.Errorf("missing p99 sample:\n%s", out)
	}
	var cs bytes.Buffer
	if err := r.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cs.String(), ",6,") {
		t.Errorf("csv missing interpolated p50:\n%s", cs.String())
	}
}

func TestPromValueNonFinite(t *testing.T) {
	r := NewRegistry(nil)
	r.Gauge("nan").Set(math.NaN())
	r.Gauge("ninf").Set(math.Inf(-1))
	r.Gauge("pinf").Set(math.Inf(+1))
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"nan NaN 0\n", "ninf -Inf 0\n", "pinf +Inf 0\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// The exact canonical spellings, nothing formatter-dependent.
	for _, v := range []struct {
		in   float64
		want string
	}{{math.NaN(), "NaN"}, {math.Inf(1), "+Inf"}, {math.Inf(-1), "-Inf"}, {3.5, "3.5"}} {
		if got := promValue(v.in); got != v.want {
			t.Errorf("promValue(%v) = %q, want %q", v.in, got, v.want)
		}
	}
}

func TestCollectKernel(t *testing.T) {
	k := sim.NewKernel()
	r := NewKernelRegistry(k)
	CollectKernel(r, k)
	for i := 0; i < 4; i++ {
		k.After(sim.Duration(i%2), func() {})
	}
	k.Run()
	snap := map[string]float64{}
	for _, mp := range r.Snapshot() {
		snap[mp.Name] = mp.Value
	}
	if snap["sim_events_processed"] != 4 {
		t.Errorf("sim_events_processed = %v, want 4", snap["sim_events_processed"])
	}
	if snap["sim_queue_high_watermark"] != 4 {
		t.Errorf("sim_queue_high_watermark = %v, want 4", snap["sim_queue_high_watermark"])
	}
	if snap["sim_max_events_per_tick"] != 2 {
		t.Errorf("sim_max_events_per_tick = %v, want 2", snap["sim_max_events_per_tick"])
	}
	if snap["sim_queue_pending"] != 0 {
		t.Errorf("sim_queue_pending = %v, want 0", snap["sim_queue_pending"])
	}
}

// TestEmptyHistogramExports: an instrument that was created but never
// observed must export the defined quantile sentinel (NaN) through both
// the Prometheus and CSV paths, and its exposition must still validate
// — the regression this guards is the quantile math being handed an
// empty bucket slice and inventing a number.
func TestEmptyHistogramExports(t *testing.T) {
	r := NewRegistry(nil)
	r.Histogram("idle", L("site", "STAR")) // created, never observed
	if got := r.Histogram("idle", L("site", "STAR")).Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty histogram Quantile = %v, want NaN", got)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`idle_bucket{site="STAR",le="+Inf"} 0 0`,
		`idle_count{site="STAR"} 0 0`,
		`idle_p50{site="STAR"} NaN 0`,
		`idle_p99{site="STAR"} NaN 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if _, err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("empty-histogram exposition does not validate: %v", err)
	}
	var cs bytes.Buffer
	if err := r.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cs.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[1], "NaN") {
		t.Errorf("csv row for empty histogram should carry NaN quantiles:\n%s", cs.String())
	}
}

// TestWritePrometheusPointsSkewGuard: a snapshot whose bucket sum ran
// ahead of its count (possible when a scrape races Observe) must still
// render a cumulative-monotonic histogram — +Inf and _count are clamped
// up to the bucket sum.
func TestWritePrometheusPointsSkewGuard(t *testing.T) {
	points := []MetricPoint{{
		Name: "lat", Kind: KindHistogram,
		Value:   2, // count lags: three observations already bucketed
		Sum:     15,
		Buckets: []BucketCount{{UpperBound: 8, Count: 3}},
	}}
	var buf bytes.Buffer
	if err := WritePrometheusPoints(&buf, points); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_bucket{le="+Inf"} 3 0`,
		`lat_count 3 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("skewed snapshot rendered without clamp, missing %q:\n%s", want, out)
		}
	}
	if _, err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("clamped exposition does not validate: %v", err)
	}
}

// TestValidateExposition covers the accept and reject paths of the
// scrape validator CI runs over artifacts and live scrapes.
func TestValidateExposition(t *testing.T) {
	r := NewRegistry(nil)
	r.Help("req_total", "requests")
	r.Counter("req_total", L("site", "STAR"), L("path", `a"b\c`)).Add(3)
	r.Gauge("depth").Set(1.5)
	h := r.Histogram("lat")
	for _, v := range []int64{1, 5, 5, 300} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("our own exposition must validate: %v\n%s", err, buf.String())
	}
	if n < 5 {
		t.Errorf("validator counted %d samples, want >= 5", n)
	}
	bad := []struct {
		name, doc string
	}{
		{"bad-name", "2metric 1\n"},
		{"bad-value", "m{a=\"b\"} notanumber\n"},
		{"bad-timestamp", "m 1 12.5\n"},
		{"unterminated-labels", "m{a=\"b 1\n"},
		{"dup-type", "# TYPE m counter\n# TYPE m gauge\nm 1\n"},
		{"unknown-type", "# TYPE m ring\nm 1\n"},
		{"non-monotonic-buckets", "# TYPE h histogram\nh_bucket{le=\"2\"} 5\nh_bucket{le=\"+Inf\"} 3\n"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ValidateExposition(strings.NewReader(tc.doc)); err == nil {
				t.Errorf("validator accepted %q", tc.doc)
			}
		})
	}
}
