package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("root")
	if sp != nil {
		t.Fatalf("nil tracer returned a span")
	}
	child := sp.Child("c")
	if child != nil {
		t.Fatalf("nil span returned a child")
	}
	sp.Annotate("k", "v")
	sp.End()
	if sp.ID() != 0 {
		t.Errorf("nil span id = %d, want 0", sp.ID())
	}
	if tr.Len() != 0 {
		t.Errorf("nil tracer len = %d", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil tracer wrote output: %v %q", err, buf.String())
	}
}

func TestSpanTreeJSONL(t *testing.T) {
	now := sim.Time(0)
	tr := NewTracer(func() sim.Time { return now })
	root := tr.Start("experiment", L("mode", "all"))
	now = 5
	site := root.Child("site", L("site", "STAR"))
	now = 7
	cyc := site.Child("cycle")
	cyc.Annotate("run", "0")
	now = 9
	cyc.End()
	cyc.End() // second End keeps the first end time
	now = 11
	site.End()
	// root left open on purpose: it must serialize without end_ns.

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("jsonl lines = %d, want 3:\n%s", len(lines), buf.String())
	}
	// Every line must be valid JSON.
	type spanLine struct {
		Span    uint64            `json:"span"`
		Parent  uint64            `json:"parent"`
		Name    string            `json:"name"`
		StartNs int64             `json:"start_ns"`
		EndNs   *int64            `json:"end_ns"`
		DurNs   *int64            `json:"dur_ns"`
		Attrs   map[string]string `json:"attrs"`
	}
	var parsed []spanLine
	for _, ln := range lines {
		var sl spanLine
		if err := json.Unmarshal([]byte(ln), &sl); err != nil {
			t.Fatalf("invalid JSON line %q: %v", ln, err)
		}
		parsed = append(parsed, sl)
	}
	if parsed[0].Name != "experiment" || parsed[0].Parent != 0 || parsed[0].EndNs != nil {
		t.Errorf("root span wrong: %+v", parsed[0])
	}
	if parsed[0].Attrs["mode"] != "all" {
		t.Errorf("root attrs wrong: %+v", parsed[0].Attrs)
	}
	if parsed[1].Parent != parsed[0].Span || parsed[1].StartNs != 5 || *parsed[1].EndNs != 11 {
		t.Errorf("site span wrong: %+v", parsed[1])
	}
	if parsed[2].Parent != parsed[1].Span || *parsed[2].EndNs != 9 || *parsed[2].DurNs != 2 {
		t.Errorf("cycle span wrong: %+v", parsed[2])
	}
	if parsed[2].Attrs["run"] != "0" {
		t.Errorf("cycle annotation missing: %+v", parsed[2].Attrs)
	}
}

func TestTracerDeterminism(t *testing.T) {
	build := func() string {
		k := sim.NewKernel()
		tr := NewKernelTracer(k)
		root := tr.Start("root")
		k.After(3, func() {
			c := root.Child("a")
			c.End()
		})
		k.After(3, func() { root.Child("b").End() })
		k.Run()
		root.End()
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := build(), build(); a != b {
		t.Errorf("trace output not deterministic:\n%s\nvs\n%s", a, b)
	}
}
