package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("root")
	if sp != nil {
		t.Fatalf("nil tracer returned a span")
	}
	child := sp.Child("c")
	if child != nil {
		t.Fatalf("nil span returned a child")
	}
	sp.Annotate("k", "v")
	sp.End()
	if sp.ID() != 0 {
		t.Errorf("nil span id = %d, want 0", sp.ID())
	}
	if tr.Len() != 0 {
		t.Errorf("nil tracer len = %d", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil tracer wrote output: %v %q", err, buf.String())
	}
}

func TestSpanTreeJSONL(t *testing.T) {
	now := sim.Time(0)
	tr := NewTracer(func() sim.Time { return now })
	root := tr.Start("experiment", L("mode", "all"))
	now = 5
	site := root.Child("site", L("site", "STAR"))
	now = 7
	cyc := site.Child("cycle")
	cyc.Annotate("run", "0")
	now = 9
	cyc.End()
	cyc.End() // second End keeps the first end time
	now = 11
	site.End()
	// root left open on purpose: it must serialize without end_ns.

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("jsonl lines = %d, want 3:\n%s", len(lines), buf.String())
	}
	// Every line must be valid JSON.
	type spanLine struct {
		Span    uint64            `json:"span"`
		Parent  uint64            `json:"parent"`
		Name    string            `json:"name"`
		StartNs int64             `json:"start_ns"`
		EndNs   *int64            `json:"end_ns"`
		DurNs   *int64            `json:"dur_ns"`
		Attrs   map[string]string `json:"attrs"`
	}
	var parsed []spanLine
	for _, ln := range lines {
		var sl spanLine
		if err := json.Unmarshal([]byte(ln), &sl); err != nil {
			t.Fatalf("invalid JSON line %q: %v", ln, err)
		}
		parsed = append(parsed, sl)
	}
	if parsed[0].Name != "experiment" || parsed[0].Parent != 0 || parsed[0].EndNs != nil {
		t.Errorf("root span wrong: %+v", parsed[0])
	}
	if parsed[0].Attrs["mode"] != "all" {
		t.Errorf("root attrs wrong: %+v", parsed[0].Attrs)
	}
	if parsed[1].Parent != parsed[0].Span || parsed[1].StartNs != 5 || *parsed[1].EndNs != 11 {
		t.Errorf("site span wrong: %+v", parsed[1])
	}
	if parsed[2].Parent != parsed[1].Span || *parsed[2].EndNs != 9 || *parsed[2].DurNs != 2 {
		t.Errorf("cycle span wrong: %+v", parsed[2])
	}
	if parsed[2].Attrs["run"] != "0" {
		t.Errorf("cycle annotation missing: %+v", parsed[2].Attrs)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	now := sim.Time(0)
	tr := NewTracer(func() sim.Time { return now })
	root := tr.Start("experiment", L("mode", "all"))
	now = 1500 // 1.5 us
	site := root.Child("site", L("site", "STAR"))
	now = 2000
	cyc := site.Child("cycle")
	now = 4500
	cyc.End()
	now = 6000
	site.End()
	// root stays open: it must serialize as a "B" event.

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	type event struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  *float64       `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  uint64         `json:"tid"`
		Args map[string]any `json:"args"`
	}
	var events []event
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3:\n%s", len(events), buf.String())
	}
	if events[0].Name != "experiment" || events[0].Ph != "B" || events[0].Dur != nil {
		t.Errorf("open root should be a B event: %+v", events[0])
	}
	if events[1].Ph != "X" || events[1].Ts != 1.5 || *events[1].Dur != 4.5 {
		t.Errorf("site event wrong (want ts=1.5us dur=4.5us): %+v", events[1])
	}
	if events[2].Ph != "X" || events[2].Ts != 2 || *events[2].Dur != 2.5 {
		t.Errorf("cycle event wrong: %+v", events[2])
	}
	// Track layout: the root owns its own track; the site subtree (site +
	// its cycle child) shares a separate one.
	if events[0].Tid == events[1].Tid {
		t.Errorf("root and site share tid %d", events[0].Tid)
	}
	if events[1].Tid != events[2].Tid {
		t.Errorf("site tid %d != cycle tid %d (subtree must share a track)", events[1].Tid, events[2].Tid)
	}
	if events[1].Args["site"] != "STAR" {
		t.Errorf("attrs not round-tripped: %+v", events[1].Args)
	}
	if events[2].Args["parent"] != float64(site.ID()) {
		t.Errorf("parent id not preserved: %+v", events[2].Args)
	}

	// Records: the iteration hook sees the same tree.
	recs := tr.Records()
	if len(recs) != 3 || recs[2].Parent != recs[1].ID || !recs[1].Ended || recs[0].Ended {
		t.Errorf("Records() inconsistent: %+v", recs)
	}

	// Nil tracer emits an empty, still-valid array.
	var nilTr *Tracer
	buf.Reset()
	if err := nilTr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var empty []event
	if err := json.Unmarshal(buf.Bytes(), &empty); err != nil || len(empty) != 0 {
		t.Errorf("nil tracer chrome trace = %q (err %v), want empty array", buf.String(), err)
	}
}

func TestTracerDeterminism(t *testing.T) {
	build := func() string {
		k := sim.NewKernel()
		tr := NewKernelTracer(k)
		root := tr.Start("root")
		k.After(3, func() {
			c := root.Child("a")
			c.End()
		})
		k.After(3, func() { root.Child("b").End() })
		k.Run()
		root.End()
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := build(), build(); a != b {
		t.Errorf("trace output not deterministic:\n%s\nvs\n%s", a, b)
	}
}
