// Package obs is the platform observability layer: a metrics registry
// (labeled counters, gauges, and log2-bucket histograms) and a span
// tracer, both timestamped in virtual sim.Time rather than wall clock so
// that exported output is bit-for-bit deterministic under a fixed seed.
//
// Observability is strictly opt-in. A nil *Registry (or *Tracer) is the
// default everywhere: every instrument method is safe on a nil receiver
// and instrument handles resolved from a nil registry are nil, so an
// instrumented hot path pays exactly one branch when observability is
// off. Callers on hot paths should resolve their instruments once at
// construction time (map lookup + lock) and hold the handles.
//
// Instruments are internally synchronized with atomics, so recording is
// safe from any goroutine; exporters take a consistent snapshot under
// the registry lock.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Clock reports the current virtual time. A nil Clock stamps every
// observation at time zero (useful for substrates, like a bare hostsim
// run, that advance time manually).
type Clock func() sim.Time

// Label is one key=value metric dimension.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind classifies an instrument family.
type Kind uint8

// Instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind in Prometheus vocabulary.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Registry holds metric families keyed by name. The zero value is not
// usable; construct with NewRegistry. All methods are safe on a nil
// receiver (they return nil instruments / do nothing), which is how the
// observability-off configuration works.
type Registry struct {
	clock      Clock
	mu         sync.Mutex
	families   map[string]*family
	collectors []func()
}

type family struct {
	name, help string
	kind       Kind
	kindSet    bool // false until the first instrument fixes the kind
	insts      map[string]*instrument
}

type instrument struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// NewRegistry builds a registry stamping observations with clock (nil
// means every stamp is time zero).
func NewRegistry(clock Clock) *Registry {
	if clock == nil {
		clock = func() sim.Time { return 0 }
	}
	return &Registry{clock: clock, families: make(map[string]*family)}
}

// NewKernelRegistry builds a registry on the kernel's virtual clock.
func NewKernelRegistry(k *sim.Kernel) *Registry { return NewRegistry(k.Now) }

// normalize sorts labels by key and returns the identity string.
func normalize(labels []Label) ([]Label, string) {
	ls := append([]Label(nil), labels...)
	sort.SliceStable(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	return ls, sb.String()
}

// lookup finds or creates the instrument for (name, labels), enforcing
// kind consistency. A kind mismatch panics: reusing a metric name with a
// different type is always a programming error.
func (r *Registry) lookup(name string, kind Kind, labels []Label) *instrument {
	ls, id := normalize(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, insts: make(map[string]*instrument)}
		r.families[name] = f
	}
	if !f.kindSet {
		f.kind, f.kindSet = kind, true
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q requested as %v but registered as %v", name, kind, f.kind))
	}
	inst := f.insts[id]
	if inst == nil {
		inst = &instrument{labels: ls}
		switch kind {
		case KindCounter:
			inst.c = &Counter{clock: r.clock}
		case KindGauge:
			inst.g = &Gauge{clock: r.clock}
		case KindHistogram:
			inst.h = &Histogram{clock: r.clock}
		}
		f.insts[id] = inst
	}
	return inst
}

// Counter returns the counter for (name, labels), creating it on first
// use. Returns nil when the registry is nil.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindCounter, labels).c
}

// Gauge returns the gauge for (name, labels).
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindGauge, labels).g
}

// Histogram returns the log2-bucket histogram for (name, labels).
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindHistogram, labels).h
}

// Help attaches help text to a metric family (shown by the Prometheus
// exporter). Creating the family first is not required.
func (r *Registry) Help(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		// Remember the help text; the kind is fixed when the first
		// instrument is created.
		f = &family{name: name, insts: make(map[string]*instrument)}
		r.families[name] = f
	}
	f.help = help
}

// RegisterCollector adds a callback run (in registration order) before
// every export, letting pull-style sources refresh gauges.
func (r *Registry) RegisterCollector(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Collect runs the registered collectors. Exporters call this
// automatically.
func (r *Registry) Collect() {
	if r == nil {
		return
	}
	r.mu.Lock()
	fns := append([]func(){}, r.collectors...)
	r.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// casMax raises a to at least v, atomically. Used for the last-update
// stamps of the explicit-time recording variants: in a simulation,
// virtual time is monotonic over the serial event order, so "time of
// the last write" equals "maximum write time" — and the maximum is
// order-independent, which keeps the stamp deterministic when parallel
// dataplane lanes record into a shared instrument concurrently.
func casMax(a *atomic.Int64, v int64) {
	for {
		old := a.Load()
		if v <= old || a.CompareAndSwap(old, v) {
			return
		}
	}
}

// Counter is a monotonically increasing count. Safe for concurrent use;
// all methods are no-ops on a nil receiver.
type Counter struct {
	clock Clock
	v     atomic.Int64
	at    atomic.Int64
}

// Add increments by n (negative n is ignored: counters never go down).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
	c.at.Store(int64(c.clock()))
}

// Inc increments by one.
func (c *Counter) Inc() { c.Add(1) }

// AddAt increments by n stamping the observation at an explicit sim
// time instead of reading the registry clock. Frame-path call sites
// inside parallel dataplane lanes use this: the kernel clock is only
// folded forward at window barriers, so the event's own timestamp is
// the value a serial run would have stamped.
func (c *Counter) AddAt(n int64, at sim.Time) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
	casMax(&c.at, int64(at))
}

// IncAt increments by one at an explicit sim time (see AddAt).
func (c *Counter) IncAt(at sim.Time) { c.AddAt(1, at) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// LastUpdate returns the sim time of the most recent increment.
func (c *Counter) LastUpdate() sim.Time {
	if c == nil {
		return 0
	}
	return sim.Time(c.at.Load())
}

// Gauge is a value that can go up and down. Safe for concurrent use;
// all methods are no-ops on a nil receiver.
type Gauge struct {
	clock Clock
	bits  atomic.Uint64
	at    atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.at.Store(int64(g.clock()))
}

// SetMax stores v only when it exceeds the current value — the
// high-watermark idiom used for queue depths.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			g.at.Store(int64(g.clock()))
			return
		}
	}
}

// SetAt stores v stamping the observation at an explicit sim time (see
// Counter.AddAt).
func (g *Gauge) SetAt(v float64, at sim.Time) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	casMax(&g.at, int64(at))
}

// SetMaxAt is SetMax with an explicit sim-time stamp (see Counter.AddAt):
// the stamp only moves when the value actually rises, matching SetMax's
// "time of the last high-watermark raise" semantics.
func (g *Gauge) SetMaxAt(v float64, at sim.Time) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			casMax(&g.at, int64(at))
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// LastUpdate returns the sim time of the most recent Set.
func (g *Gauge) LastUpdate() sim.Time {
	if g == nil {
		return 0
	}
	return sim.Time(g.at.Load())
}

// histBuckets is the bucket count: bucket i covers [2^i, 2^(i+1)).
const histBuckets = 64

// Histogram is a bpftrace-style log2 histogram (the same shape hostsim
// uses for writev latency). Safe for concurrent use; all methods are
// no-ops on a nil receiver.
type Histogram struct {
	clock   Clock
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	at      atomic.Int64
}

// Observe records one value. Values below 1 land in the first bucket.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	b := 0
	if v >= 1 {
		b = bits.Len64(uint64(v)) - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	h.at.Store(int64(h.clock()))
}

// ObserveAt records one value stamping the observation at an explicit
// sim time (see Counter.AddAt).
func (h *Histogram) ObserveAt(v int64, at sim.Time) {
	if h == nil {
		return
	}
	b := 0
	if v >= 1 {
		b = bits.Len64(uint64(v)) - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	casMax(&h.at, int64(at))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket returns the count for bucket i ([2^i, 2^(i+1))).
func (h *Histogram) Bucket(i int) int64 {
	if h == nil || i < 0 || i >= histBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// LastUpdate returns the sim time of the most recent observation.
func (h *Histogram) LastUpdate() sim.Time {
	if h == nil {
		return 0
	}
	return sim.Time(h.at.Load())
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear
// interpolation inside the log2 bucket containing the target rank, the
// same scheme Prometheus applies to its histograms. An empty (or nil)
// histogram has no quantiles: the defined sentinel is NaN, checked
// explicitly here rather than left to the bucket interpolation's edge
// behavior, and exporters render it with the Prometheus "NaN" spelling.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count.Load() == 0 {
		return math.NaN()
	}
	var bs []BucketCount
	for i := 0; i < histBuckets; i++ {
		if c := h.buckets[i].Load(); c > 0 {
			bs = append(bs, BucketCount{UpperBound: 1 << uint(i+1), Count: c})
		}
	}
	return BucketQuantile(q, bs)
}

// BucketQuantile interpolates the q-quantile from a slice of non-empty
// log2 buckets (as found in MetricPoint.Buckets). A bucket with upper
// bound u covers [u/2, u), except the first bucket (u = 2), which also
// absorbs sub-1 observations and therefore covers [0, 2). Returns NaN
// when no observations exist.
func BucketQuantile(q float64, buckets []BucketCount) float64 {
	var total int64
	for _, b := range buckets {
		total += b.Count
	}
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for _, b := range buckets {
		if float64(cum)+float64(b.Count) >= rank {
			hi := float64(b.UpperBound)
			lo := hi / 2
			if b.UpperBound <= 2 {
				lo = 0
			}
			within := (rank - float64(cum)) / float64(b.Count)
			return lo + within*(hi-lo)
		}
		cum += b.Count
	}
	// Unreachable: rank <= total and the loop covers every observation.
	return float64(buckets[len(buckets)-1].UpperBound)
}

// BucketCount is one non-empty histogram bucket in a snapshot.
type BucketCount struct {
	// UpperBound is the bucket's exclusive upper bound (2^(i+1)).
	UpperBound int64
	// Count is the number of observations in the bucket (not cumulative).
	Count int64
}

// MetricPoint is one instrument's state in a snapshot.
type MetricPoint struct {
	Name   string
	Kind   Kind
	Help   string
	Labels []Label
	// Value holds the counter or gauge value; for histograms it is the
	// observation count.
	Value float64
	// Sum and Buckets are populated for histograms only.
	Sum     int64
	Buckets []BucketCount
	// At is the sim time of the last observation.
	At sim.Time
}

// Snapshot runs collectors and returns every instrument, sorted by
// metric name then label identity — a deterministic order, so exports
// of a deterministic simulation are byte-identical across runs.
func (r *Registry) Snapshot() []MetricPoint {
	if r == nil {
		return nil
	}
	r.Collect()
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []MetricPoint
	for _, n := range names {
		f := r.families[n]
		ids := make([]string, 0, len(f.insts))
		for id := range f.insts {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			inst := f.insts[id]
			mp := MetricPoint{Name: f.name, Kind: f.kind, Help: f.help, Labels: inst.labels}
			switch f.kind {
			case KindCounter:
				mp.Value = float64(inst.c.Value())
				mp.At = inst.c.LastUpdate()
			case KindGauge:
				mp.Value = inst.g.Value()
				mp.At = inst.g.LastUpdate()
			case KindHistogram:
				mp.Value = float64(inst.h.Count())
				mp.Sum = inst.h.Sum()
				mp.At = inst.h.LastUpdate()
				var cum int64
				for i := 0; i < histBuckets; i++ {
					if c := inst.h.Bucket(i); c > 0 {
						cum += c
						mp.Buckets = append(mp.Buckets, BucketCount{
							UpperBound: 1 << uint(i+1), Count: c,
						})
					}
				}
				// Observe bumps the bucket before the total count, so a
				// snapshot racing a recording can see one more bucketed
				// observation than counted. Clamp the count up to the
				// bucket sum so the exposition's +Inf bucket stays
				// cumulative-monotonic under concurrent scrapes.
				if cum > int64(mp.Value) {
					mp.Value = float64(cum)
				}
			}
			out = append(out, mp)
		}
	}
	return out
}
