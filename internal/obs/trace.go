package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"

	"repro/internal/sim"
)

// Tracer records spans over the discrete-event simulation: each span has
// a parent, a name, sim-time start/end, and optional attributes. Like
// the registry, a nil *Tracer is the observability-off configuration:
// Start on a nil tracer returns a nil span, and every span method is a
// no-op on a nil receiver, so instrumented code needs no conditionals.
type Tracer struct {
	clock Clock
	mu    sync.Mutex
	next  uint64
	spans []*Span

	// Memory bound (SetSpanCap). 0 means unbounded; past the cap new
	// spans and counter samples are dropped and counted.
	spanCap  int
	dropped  uint64
	droppedC *Counter

	// Counter samples recorded for the Chrome exporter's "C" events
	// (RecordCounter); not part of the JSONL span artifact.
	counters []counterSample
}

// counterSample is one RecordCounter observation.
type counterSample struct {
	name string
	at   sim.Time
	v    float64
}

// NewTracer builds a tracer stamping spans with clock (nil clock stamps
// everything at time zero).
func NewTracer(clock Clock) *Tracer {
	if clock == nil {
		clock = func() sim.Time { return 0 }
	}
	return &Tracer{clock: clock}
}

// NewKernelTracer builds a tracer on the kernel's virtual clock.
func NewKernelTracer(k *sim.Kernel) *Tracer { return NewTracer(k.Now) }

// Span is one traced operation. Spans form a tree via Child.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  sim.Time
	end    sim.Time
	ended  bool
	attrs  []Label
}

// Start opens a root span. Returns nil on a nil tracer.
func (t *Tracer) Start(name string, attrs ...Label) *Span {
	return t.startSpan(name, 0, attrs)
}

// SetSpanCap bounds the tracer's memory: once n spans (or n counter
// samples) are retained, further ones are dropped instead of growing
// without bound on long campaigns. Drops increment dropped (typically
// the registry's patchwork_trace_dropped_total counter; nil is allowed)
// and the Dropped tally. n <= 0 restores unbounded retention. Because
// spans are only started from global events, the cap trips at the same
// point in serial and laned runs — sim artifacts stay deterministic.
func (t *Tracer) SetSpanCap(n int, dropped *Counter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spanCap = n
	t.droppedC = dropped
}

// Dropped reports how many spans and counter samples the cap discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// drop counts one capped-out record. Callers hold t.mu.
func (t *Tracer) drop() {
	t.dropped++
	if t.droppedC != nil {
		t.droppedC.Inc()
	}
}

func (t *Tracer) startSpan(name string, parent uint64, attrs []Label) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spanCap > 0 && len(t.spans) >= t.spanCap {
		t.drop()
		return nil
	}
	t.next++
	sp := &Span{
		tr: t, id: t.next, parent: parent, name: name,
		start: t.clock(), attrs: append([]Label(nil), attrs...),
	}
	t.spans = append(t.spans, sp)
	return sp
}

// Len reports how many spans have been started.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// RecordCounter samples a metric value at the current sim time for the
// Chrome exporter, which renders the series as a counter ("C") track
// alongside the spans — load next to latency in one flame view. Samples
// are separate from spans: they never appear in WriteJSONL, so existing
// span artifacts are unaffected. Subject to the SetSpanCap bound.
func (t *Tracer) RecordCounter(name string, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spanCap > 0 && len(t.counters) >= t.spanCap {
		t.drop()
		return
	}
	t.counters = append(t.counters, counterSample{name: name, at: t.clock(), v: v})
}

// Child opens a span parented on s. Safe on a nil receiver (returns nil).
func (s *Span) Child(name string, attrs ...Label) *Span {
	if s == nil {
		return nil
	}
	return s.tr.startSpan(name, s.id, attrs)
}

// ID returns the span's identifier (0 on nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Annotate appends an attribute to an open span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.attrs = append(s.attrs, Label{Key: key, Value: value})
}

// End closes the span at the current sim time. Ending twice keeps the
// first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.ended {
		return
	}
	s.end = s.tr.clock()
	s.ended = true
}

// SpanRecord is an exported snapshot of one span, for consumers that
// iterate the trace (the health flight recorder, the Chrome exporter).
type SpanRecord struct {
	ID     uint64
	Parent uint64
	Name   string
	Start  sim.Time
	End    sim.Time
	Ended  bool
	Attrs  []Label
}

// Records returns a snapshot of every span in start order. Attribute
// slices are copied, so callers may hold the result across further
// tracing.
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	for i, sp := range t.spans {
		out[i] = SpanRecord{
			ID: sp.id, Parent: sp.parent, Name: sp.name,
			Start: sp.start, End: sp.end, Ended: sp.ended,
			Attrs: append([]Label(nil), sp.attrs...),
		}
	}
	return out
}

// WriteJSONL emits one JSON object per span, in start order (which is
// deterministic because the simulation is). Unended spans omit end_ns.
// Attribute order is preserved from the instrumentation site, so output
// for a fixed seed is byte-identical across runs.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, sp := range spans {
		if err := writeSpanJSON(bw, sp); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeMicros renders a sim time as Chrome trace microseconds with
// nanosecond precision preserved in the fraction.
func chromeMicros(t sim.Time) string {
	return fmt.Sprintf("%d.%03d", int64(t)/1000, int64(t)%1000)
}

// WriteChromeTrace emits the span tree in the Chrome trace-event JSON
// array format, so a dump opens directly in about://tracing or Perfetto.
// Ended spans become complete ("X") events; still-open spans become
// begin ("B") events. Each root span and each of its direct children get
// their own track (tid), so concurrent per-site subtrees render side by
// side instead of interleaving; deeper descendants inherit their
// subtree's track and nest by timing. Counter samples recorded with
// RecordCounter follow the spans as counter ("C") events on tid 0.
// Output is deterministic for a deterministic simulation.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	recs := t.Records()
	var counters []counterSample
	if t != nil {
		t.mu.Lock()
		counters = append(counters, t.counters...)
		t.mu.Unlock()
	}
	byID := make(map[uint64]SpanRecord, len(recs))
	for _, r := range recs {
		byID[r.ID] = r
	}
	// track resolves the tid: the span itself when it is a root or a
	// direct child of a root, otherwise its closest such ancestor.
	var track func(r SpanRecord) uint64
	track = func(r SpanRecord) uint64 {
		if r.Parent == 0 {
			return r.ID
		}
		parent, ok := byID[r.Parent]
		if !ok || parent.Parent == 0 {
			return r.ID
		}
		return track(parent)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for i, r := range recs {
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		name, err := json.Marshal(r.Name)
		if err != nil {
			return err
		}
		ph := "B"
		if r.Ended {
			ph = "X"
		}
		if _, err := fmt.Fprintf(bw, `{"name":%s,"cat":"sim","ph":%q,"ts":%s,`,
			name, ph, chromeMicros(r.Start)); err != nil {
			return err
		}
		if r.Ended {
			if _, err := fmt.Fprintf(bw, `"dur":%s,`, chromeMicros(r.End-r.Start)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, `"pid":1,"tid":%d,"args":{"span":%d,"parent":%d`,
			track(r), r.ID, r.Parent); err != nil {
			return err
		}
		for _, a := range r.Attrs {
			k, err := json.Marshal(a.Key)
			if err != nil {
				return err
			}
			v, err := json.Marshal(a.Value)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(bw, ",%s:%s", k, v); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("}}"); err != nil {
			return err
		}
	}
	for i, c := range counters {
		if i > 0 || len(recs) > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		name, err := json.Marshal(c.name)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, `{"name":%s,"cat":"sim","ph":"C","ts":%s,"pid":1,"tid":0,"args":{"value":%s}}`,
			name, chromeMicros(c.at), strconv.FormatFloat(c.v, 'g', -1, 64)); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func writeSpanJSON(w *bufio.Writer, sp *Span) error {
	name, err := json.Marshal(sp.name)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, `{"span":%d,"parent":%d,"name":%s,"start_ns":%d`,
		sp.id, sp.parent, name, int64(sp.start)); err != nil {
		return err
	}
	if sp.ended {
		if _, err := fmt.Fprintf(w, `,"end_ns":%d,"dur_ns":%d`,
			int64(sp.end), int64(sp.end-sp.start)); err != nil {
			return err
		}
	}
	if len(sp.attrs) > 0 {
		if _, err := w.WriteString(`,"attrs":{`); err != nil {
			return err
		}
		for i, a := range sp.attrs {
			if i > 0 {
				if err := w.WriteByte(','); err != nil {
					return err
				}
			}
			k, err := json.Marshal(a.Key)
			if err != nil {
				return err
			}
			v, err := json.Marshal(a.Value)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s:%s", k, v); err != nil {
				return err
			}
		}
		if err := w.WriteByte('}'); err != nil {
			return err
		}
	}
	_, err = w.WriteString("}\n")
	return err
}
