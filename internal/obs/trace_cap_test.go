package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

// TestChromeTraceEscaping checks span names and attributes that are
// hostile to JSON (quotes, backslashes, newlines, non-ASCII) survive
// the Chrome exporter — the output must parse and round-trip the names.
func TestChromeTraceEscaping(t *testing.T) {
	tr := NewTracer(nil)
	names := []string{
		`quote " inside`,
		`back\slash`,
		"new\nline\tand tab",
		"unicode – ünïcödé 事件",
		"</script><b>html</b>",
	}
	for _, n := range names {
		sp := tr.Start(n, L("attr \"key\"", "val\nue"))
		sp.End()
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("hostile names broke the JSON: %v\n%s", err, buf.String())
	}
	got := make(map[string]bool)
	for _, e := range events {
		if n, ok := e["name"].(string); ok {
			got[n] = true
		}
	}
	for _, n := range names {
		if !got[n] {
			t.Errorf("name %q did not round-trip", n)
		}
	}
}

// TestChromeTraceEmpty checks the zero-span and nil-tracer exports are
// still valid (empty) JSON arrays.
func TestChromeTraceEmpty(t *testing.T) {
	for name, tr := range map[string]*Tracer{"nil": nil, "zero-span": NewTracer(nil)} {
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var events []any
		if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
			t.Fatalf("%s: invalid JSON: %v\n%s", name, err, buf.String())
		}
		if len(events) != 0 {
			t.Errorf("%s: %d events from an empty tracer", name, len(events))
		}
	}
}

// TestSpanCap checks the memory bound: spans past the cap are dropped,
// counted, and mirrored into the wired counter, and the nil-span return
// keeps instrumented code working.
func TestSpanCap(t *testing.T) {
	r := NewRegistry(nil)
	c := r.Counter("patchwork_trace_dropped_total")
	tr := NewTracer(nil)
	tr.SetSpanCap(3, c)
	var spans []*Span
	for i := 0; i < 5; i++ {
		spans = append(spans, tr.Start("s"))
	}
	if tr.Len() != 3 {
		t.Errorf("len = %d, want 3", tr.Len())
	}
	if spans[3] != nil || spans[4] != nil {
		t.Error("capped-out Start should return nil")
	}
	spans[4].Child("c").End() // must be a safe no-op
	if tr.Dropped() != 2 {
		t.Errorf("Dropped() = %d, want 2", tr.Dropped())
	}
	if got := c.Value(); got != 2 {
		t.Errorf("dropped counter = %v, want 2", got)
	}

	// Counter samples share the bound.
	tr2 := NewTracer(nil)
	tr2.SetSpanCap(2, nil)
	for i := 0; i < 4; i++ {
		tr2.RecordCounter("m", float64(i))
	}
	if tr2.Dropped() != 2 {
		t.Errorf("counter samples dropped = %d, want 2", tr2.Dropped())
	}

	// Cap removal restores unbounded growth.
	tr.SetSpanCap(0, nil)
	tr.Start("s")
	if tr.Len() != 4 {
		t.Errorf("len after uncapping = %d, want 4", tr.Len())
	}
}

// TestRecordCounterChromeOnly checks counter samples land in the Chrome
// export as "C" events but never in the JSONL span artifact.
func TestRecordCounterChromeOnly(t *testing.T) {
	now := sim.Time(0)
	tr := NewTracer(func() sim.Time { return now })
	sp := tr.Start("work")
	now = 1500
	tr.RecordCounter("frames_total", 42)
	now = 3000
	sp.End()

	var jsonl bytes.Buffer
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(jsonl.Bytes(), []byte("frames_total")) {
		t.Error("counter sample leaked into the JSONL span artifact")
	}

	var chrome bytes.Buffer
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(chrome.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range events {
		if e["ph"] == "C" && e["name"] == "frames_total" {
			found = true
			if e["ts"] != 1.5 {
				t.Errorf("counter ts = %v, want 1.5 µs", e["ts"])
			}
			args := e["args"].(map[string]any)
			if args["value"] != 42.0 {
				t.Errorf("counter value = %v, want 42", args["value"])
			}
		}
	}
	if !found {
		t.Error("counter sample missing from the Chrome export")
	}

	// Nil tracer: RecordCounter must be a no-op, not a panic.
	var nilTr *Tracer
	nilTr.RecordCounter("x", 1)
}
