package switchsim

import (
	"errors"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

func newTestSwitch(t testing.TB) (*Switch, *sim.Kernel) {
	t.Helper()
	k := sim.NewKernel()
	sw := New("tor0", k)
	sw.AddPort("P1", RoleUplink, 100*units.Gbps)
	sw.AddPort("P2", RoleDownlink, 100*units.Gbps)
	sw.AddPort("P3", RoleDownlink, 100*units.Gbps)
	sw.AddPort("P4", RoleDownlink, 100*units.Gbps)
	return sw, k
}

func TestCounters(t *testing.T) {
	sw, _ := newTestSwitch(t)
	f := Frame{Size: 1500}
	if err := sw.Transit("P2", DirRx, f); err != nil {
		t.Fatal(err)
	}
	if err := sw.Transit("P3", DirTx, f); err != nil {
		t.Fatal(err)
	}
	c2 := sw.Port("P2").Counters()
	if c2.RxFrames != 1 || c2.RxBytes != 1500 || c2.TxFrames != 0 {
		t.Errorf("P2 counters = %+v", c2)
	}
	c3 := sw.Port("P3").Counters()
	if c3.TxFrames != 1 || c3.TxBytes != 1500 {
		t.Errorf("P3 counters = %+v", c3)
	}
}

func TestTransitUnknownPort(t *testing.T) {
	sw, _ := newTestSwitch(t)
	if err := sw.Transit("P99", DirRx, Frame{Size: 1}); err == nil {
		t.Error("unknown port should error")
	}
}

func TestMirrorClonesBothDirections(t *testing.T) {
	sw, k := newTestSwitch(t)
	var got []int
	sw.Port("P4").SetReceiver(ReceiverFunc(func(_ sim.Time, f Frame) {
		got = append(got, f.Size)
	}))
	m, err := sw.StartMirror("P2", DirBoth, "P4")
	if err != nil {
		t.Fatal(err)
	}
	_ = sw.Transit("P2", DirRx, Frame{Size: 100})
	_ = sw.Transit("P2", DirTx, Frame{Size: 200})
	_ = sw.Transit("P3", DirRx, Frame{Size: 300}) // unmirrored port
	k.Run()
	if len(got) != 2 || got[0] != 100 || got[1] != 200 {
		t.Errorf("delivered = %v", got)
	}
	if m.Cloned != 2 || m.CloneDrops != 0 {
		t.Errorf("session = %+v", m)
	}
}

func TestMirrorSingleDirection(t *testing.T) {
	sw, k := newTestSwitch(t)
	n := 0
	sw.Port("P4").SetReceiver(ReceiverFunc(func(sim.Time, Frame) { n++ }))
	if _, err := sw.StartMirror("P2", DirRx, "P4"); err != nil {
		t.Fatal(err)
	}
	_ = sw.Transit("P2", DirRx, Frame{Size: 64})
	_ = sw.Transit("P2", DirTx, Frame{Size: 64})
	k.Run()
	if n != 1 {
		t.Errorf("delivered %d frames, want 1 (Rx only)", n)
	}
}

func TestMirrorConflicts(t *testing.T) {
	sw, _ := newTestSwitch(t)
	if _, err := sw.StartMirror("P2", DirBoth, "P4"); err != nil {
		t.Fatal(err)
	}
	var conflict ErrMirrorConflict
	// Same mirrored port.
	if _, err := sw.StartMirror("P2", DirRx, "P3"); !errors.As(err, &conflict) {
		t.Errorf("double mirror err = %v", err)
	}
	// Egress already used.
	if _, err := sw.StartMirror("P3", DirRx, "P4"); !errors.As(err, &conflict) {
		t.Errorf("shared egress err = %v", err)
	}
	// Self mirror.
	if _, err := sw.StartMirror("P3", DirRx, "P3"); err == nil {
		t.Error("self mirror should fail")
	}
	// Unknown ports.
	if _, err := sw.StartMirror("PX", DirRx, "P3"); err == nil {
		t.Error("unknown mirrored port should fail")
	}
	if _, err := sw.StartMirror("P3", DirRx, "PX"); err == nil {
		t.Error("unknown egress port should fail")
	}
}

func TestStopMirrorAllowsRestart(t *testing.T) {
	sw, _ := newTestSwitch(t)
	if _, err := sw.StartMirror("P2", DirBoth, "P4"); err != nil {
		t.Fatal(err)
	}
	if !sw.StopMirror("P2") {
		t.Error("StopMirror should report true")
	}
	if sw.StopMirror("P2") {
		t.Error("second StopMirror should report false")
	}
	if _, err := sw.StartMirror("P2", DirBoth, "P4"); err != nil {
		t.Errorf("restart after stop: %v", err)
	}
	// Port cycling: move the mirror to another port, same egress.
	sw.StopMirror("P2")
	if _, err := sw.StartMirror("P3", DirBoth, "P4"); err != nil {
		t.Errorf("cycle to new port: %v", err)
	}
}

func TestMirrorOverflowWhenTxPlusRxExceedsLineRate(t *testing.T) {
	// The paper's congestion condition: Mirrored(Tx)+Mirrored(Rx) >
	// line rate of the egress channel. Drive P2 with 2x100Gbps (both
	// directions at line rate) and mirror both into P4 (100Gbps): about
	// half the clones must drop once the queue fills.
	k := sim.NewKernel()
	sw := New("tor0", k)
	sw.AddPort("P2", RoleDownlink, 100*units.Gbps)
	sw.AddPort("P4", RoleDownlink, 100*units.Gbps)
	m, err := sw.StartMirror("P2", DirBoth, "P4")
	if err != nil {
		t.Fatal(err)
	}
	const frameSize = 9000 // jumbo
	perDir := int64(100 * units.Gbps.TransmitNanos(frameSize))
	_ = perDir
	dur := sim.Time(2 * sim.Second)
	interval := sim.Time((100 * units.Gbps).TransmitNanos(frameSize)) // line rate per direction
	for ts := sim.Time(0); ts < dur; ts += interval {
		ts := ts
		k.At(ts, func() {
			_ = sw.Transit("P2", DirRx, Frame{Size: frameSize})
			_ = sw.Transit("P2", DirTx, Frame{Size: frameSize})
		})
	}
	k.Run()
	total := m.Cloned + m.CloneDrops
	if total == 0 {
		t.Fatal("no frames offered")
	}
	lossRatio := float64(m.CloneDrops) / float64(total)
	if lossRatio < 0.4 || lossRatio > 0.6 {
		t.Errorf("loss ratio = %.3f, want ~0.5 (cloned=%d dropped=%d)", lossRatio, m.Cloned, m.CloneDrops)
	}
	if sw.Port("P4").Counters().TxDrops != m.CloneDrops {
		t.Error("egress TxDrops should match session drops")
	}
}

func TestMirrorNoOverflowAtHalfRate(t *testing.T) {
	// Rx-only mirroring at line rate fits exactly in the egress channel.
	k := sim.NewKernel()
	sw := New("tor0", k)
	sw.AddPort("P2", RoleDownlink, 100*units.Gbps)
	sw.AddPort("P4", RoleDownlink, 100*units.Gbps)
	m, err := sw.StartMirror("P2", DirRx, "P4")
	if err != nil {
		t.Fatal(err)
	}
	const frameSize = 1500
	interval := sim.Time((100 * units.Gbps).TransmitNanos(frameSize))
	for ts := sim.Time(0); ts < sim.Time(100*sim.Millisecond); ts += interval {
		ts := ts
		k.At(ts, func() {
			_ = sw.Transit("P2", DirRx, Frame{Size: frameSize})
		})
	}
	k.Run()
	if m.CloneDrops != 0 {
		t.Errorf("drops = %d at exactly line rate", m.CloneDrops)
	}
	if m.Cloned == 0 {
		t.Error("nothing cloned")
	}
}

func TestMirrorDeliveryTimeReflectsQueueing(t *testing.T) {
	k := sim.NewKernel()
	sw := New("tor0", k)
	sw.AddPort("P2", RoleDownlink, 100*units.Gbps)
	sw.AddPort("P4", RoleDownlink, 1*units.Gbps) // slow egress
	var deliveries []sim.Time
	sw.Port("P4").SetReceiver(ReceiverFunc(func(now sim.Time, _ Frame) {
		deliveries = append(deliveries, now)
	}))
	if _, err := sw.StartMirror("P2", DirRx, "P4"); err != nil {
		t.Fatal(err)
	}
	// Two back-to-back 1500B frames at t=0: the second must wait for the
	// first (12us at 1Gbps).
	k.At(0, func() {
		_ = sw.Transit("P2", DirRx, Frame{Size: 1500})
		_ = sw.Transit("P2", DirRx, Frame{Size: 1500})
	})
	k.Run()
	if len(deliveries) != 2 {
		t.Fatalf("deliveries = %v", deliveries)
	}
	if deliveries[0] != 12000 || deliveries[1] != 24000 {
		t.Errorf("delivery times = %v, want [12000 24000]", deliveries)
	}
}

func TestPortsOrderDeterministic(t *testing.T) {
	sw, _ := newTestSwitch(t)
	names := sw.PortNames()
	want := []string{"P1", "P2", "P3", "P4"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names = %v", names)
		}
	}
	ports := sw.Ports()
	if len(ports) != 4 || ports[0].Name != "P1" || ports[0].Role != RoleUplink {
		t.Errorf("ports = %v", ports)
	}
}

func TestDuplicatePortPanics(t *testing.T) {
	sw, _ := newTestSwitch(t)
	defer func() {
		if recover() == nil {
			t.Error("duplicate port should panic")
		}
	}()
	sw.AddPort("P1", RoleDownlink, units.Gbps)
}

func TestDirectionString(t *testing.T) {
	if DirRx.String() != "rx" || DirTx.String() != "tx" || DirBoth.String() != "both" {
		t.Error("direction names")
	}
	if RoleUplink.String() != "uplink" || RoleDownlink.String() != "downlink" {
		t.Error("role names")
	}
}

func TestMirrorsSorted(t *testing.T) {
	sw, _ := newTestSwitch(t)
	if _, err := sw.StartMirror("P3", DirRx, "P4"); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.StartMirror("P1", DirRx, "P2"); err != nil {
		t.Fatal(err)
	}
	ms := sw.Mirrors()
	if len(ms) != 2 || ms[0].Mirrored != "P1" || ms[1].Mirrored != "P3" {
		t.Errorf("mirrors = %v", ms)
	}
}
