// Package switchsim models a FABRIC top-of-rack Ethernet switch (the role
// played by Cisco 5700-series and Ciena 8190 switches on the real
// testbed). The model is deliberately narrow: it implements exactly the
// features Patchwork consumes — duplex ports with line rates, SNMP-style
// octet/frame counters, and port mirroring with egress-queue tail drop.
//
// The overflow arithmetic follows Section 6.2.2 of the paper: when both
// directions of a mirrored port are cloned into the transmit channel of a
// single egress port, frames are dropped at the switch whenever
// Mirrored(Tx) + Mirrored(Rx) exceeds the egress channel's line rate.
package switchsim

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/units"
)

// Direction selects one or both channels of a duplex port.
type Direction uint8

// Directions. On FABRIC, a port's Rx is traffic arriving at the switch
// from the attached device; Tx is traffic the switch sends to it.
const (
	DirRx Direction = 1 << iota
	DirTx
	DirBoth = DirRx | DirTx
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case DirRx:
		return "rx"
	case DirTx:
		return "tx"
	case DirBoth:
		return "both"
	default:
		return fmt.Sprintf("Direction(%d)", uint8(d))
	}
}

// PortRole distinguishes downlinks (to servers in the same rack) from
// uplinks (to other FABRIC sites).
type PortRole uint8

// Port roles.
const (
	RoleDownlink PortRole = iota
	RoleUplink
)

// String names the role.
func (r PortRole) String() string {
	if r == RoleUplink {
		return "uplink"
	}
	return "downlink"
}

// Frame is a frame crossing the switch. Data may be nil for rate-only
// modeling; Size is always authoritative.
type Frame struct {
	Data []byte
	Size int
}

// NewFrame wraps real packet bytes.
func NewFrame(data []byte) Frame { return Frame{Data: data, Size: len(data)} }

// Counters are cumulative per-channel statistics, equivalent to the SNMP
// ifHCOutOctets/ifHCInOctets family that FABRIC's telemetry polls.
type Counters struct {
	RxBytes, RxFrames uint64
	TxBytes, TxFrames uint64
	// TxDrops counts frames dropped at this port's egress queue; mirror
	// overflow shows up here.
	TxDrops uint64
	// DownDrops counts frames that arrived while the port was
	// administratively or fault-injection down (link flap).
	DownDrops uint64
}

// Receiver consumes frames delivered out of a switch port's Tx channel
// (e.g. a capture NIC).
type Receiver interface {
	// DeliverFrame is called when the frame's last byte leaves the port.
	DeliverFrame(now sim.Time, f Frame)
}

// ReceiverFunc adapts a function to Receiver.
type ReceiverFunc func(now sim.Time, f Frame)

// DeliverFrame calls the function.
func (fn ReceiverFunc) DeliverFrame(now sim.Time, f Frame) { fn(now, f) }

// Port is one duplex switch port.
type Port struct {
	Name     string
	Role     PortRole
	LineRate units.BitRate

	counters Counters

	// Egress (Tx channel) modeling: a finite queue drained at LineRate.
	queueCap  int64    // bytes the egress queue can hold
	queueFree sim.Time // virtual time at which the queue drains empty
	receiver  Receiver
	sw        *Switch

	// down marks a flapped link: frames transiting (either direction) are
	// dropped, as are mirror clones destined for it.
	down bool
}

// Down reports whether the port's link is currently down.
func (p *Port) Down() bool {
	p.sw.mu.Lock()
	defer p.sw.mu.Unlock()
	return p.down
}

// DefaultEgressQueueBytes is the default per-port egress buffer. Shallow
// ToR buffers are what make mirror congestion observable.
const DefaultEgressQueueBytes = 12 * 1024 * 1024 // 12 MB, typical ToR class

// Counters returns a snapshot of the port's counters.
func (p *Port) Counters() Counters {
	p.sw.mu.Lock()
	defer p.sw.mu.Unlock()
	return p.counters
}

// SetReceiver attaches a frame consumer to the port's Tx channel.
func (p *Port) SetReceiver(r Receiver) {
	p.sw.mu.Lock()
	defer p.sw.mu.Unlock()
	p.receiver = r
}

// Switch is a top-of-rack switch. Methods are safe for concurrent use,
// though simulations typically drive it from a single goroutine.
type Switch struct {
	Name string

	mu      sync.Mutex
	sched   sim.Scheduler
	ports   map[string]*Port
	order   []string // deterministic iteration order
	mirrors map[string]*MirrorSession
	obsReg  *obs.Registry

	// Clone-delivery pool: free list of delivery records plus the method
	// value dispatched through sim.Kernel.AtArg, bound once in New so the
	// per-clone path allocates no closure.
	cloneFree *cloneDelivery
	cloneFn   func(any)

	// cloneFault, when set, drops a mirror clone whenever it returns true
	// — the mirror-table corruption injection point (internal/faults).
	cloneFault func(now sim.Time) bool
}

// cloneDelivery carries one mirrored frame from the egress queue to its
// receiver. Records recycle through Switch.cloneFree (under mu).
type cloneDelivery struct {
	r    Receiver
	at   sim.Time
	f    Frame
	next *cloneDelivery
}

// SetCloneFault installs (or, with nil, removes) a per-clone fault hook:
// returning true silently discards that mirrored copy, modeling a
// corrupted mirror-table entry. Original traffic is unaffected.
func (s *Switch) SetCloneFault(f func(now sim.Time) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cloneFault = f
}

// SetPortDown flaps the named port's link state. While down, frames
// transiting the port in either direction are dropped (counted in
// DownDrops), and mirror clones destined for it are counted as clone
// drops. Mirror sessions survive a flap, as on a real switch: the
// configuration persists, the traffic does not.
func (s *Switch) SetPortDown(name string, down bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.ports[name]
	if !ok {
		return fmt.Errorf("switchsim: no port %q on %q", name, s.Name)
	}
	p.down = down
	return nil
}

// SetObs attaches a metrics registry. Mirror sessions started afterwards
// count cloned frames and egress-queue overflows into it; with no
// registry (the default) cloning pays a single nil check.
func (s *Switch) SetObs(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obsReg = reg
	if reg != nil {
		reg.Help("switchsim_mirror_cloned_total", "mirrored frames enqueued on the egress channel")
		reg.Help("switchsim_mirror_clone_drops_total", "mirrored frames dropped to egress-queue overflow")
		reg.Help("switchsim_mirror_fault_drops_total", "mirrored frames dropped to injected mirror-table corruption")
	}
}

// New creates a switch bound to a scheduler — the simulation kernel in
// a serial world, or a dataplane lane (internal/lanes) in a laned one.
func New(name string, sched sim.Scheduler) *Switch {
	s := &Switch{
		Name:    name,
		sched:   sched,
		ports:   make(map[string]*Port),
		mirrors: make(map[string]*MirrorSession),
	}
	s.cloneFn = s.deliverClone
	return s
}

// SetScheduler rebinds the switch to a different scheduler. Used when a
// site is assigned to a dataplane lane after the federation is built;
// must not be called while the simulation is running.
func (s *Switch) SetScheduler(sched sim.Scheduler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sched = sched
}

// AddPort creates a port. Adding a duplicate name panics: port layout is
// static configuration, so that is a programming error.
func (s *Switch) AddPort(name string, role PortRole, rate units.BitRate) *Port {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.ports[name]; dup {
		panic(fmt.Sprintf("switchsim: duplicate port %q on %q", name, s.Name))
	}
	p := &Port{Name: name, Role: role, LineRate: rate, queueCap: DefaultEgressQueueBytes, sw: s}
	s.ports[name] = p
	s.order = append(s.order, name)
	return p
}

// Port returns the named port, or nil.
func (s *Switch) Port(name string) *Port {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ports[name]
}

// Ports returns all ports in creation order.
func (s *Switch) Ports() []*Port {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Port, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.ports[n])
	}
	return out
}

// PortNames returns the port names in creation order.
func (s *Switch) PortNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// MirrorSession clones one port's traffic to another port's Tx channel.
// FABRIC allows a port to be mirrored by at most one session at a time,
// which is why Patchwork must cycle mirrors rather than share them.
type MirrorSession struct {
	Mirrored   string
	Directions Direction
	Egress     string
	// CloneDrops counts mirrored frames lost to egress overflow — the
	// incomplete-sample signal Patchwork detects via telemetry.
	CloneDrops uint64
	// FaultDrops counts mirrored frames lost to injected mirror-table
	// corruption (SetCloneFault).
	FaultDrops uint64
	// Cloned counts mirrored frames successfully enqueued.
	Cloned uint64

	// Obs counters, resolved at StartMirror (nil without a registry).
	clonedC, dropsC, faultDropsC *obs.Counter
}

// ErrMirrorConflict is returned when a port is already mirrored or when
// the egress port is already in use as a mirror destination.
type ErrMirrorConflict struct{ Port string }

func (e ErrMirrorConflict) Error() string {
	return fmt.Sprintf("switchsim: port %q already participates in a mirror session", e.Port)
}

// StartMirror begins cloning traffic crossing mirrored (in the given
// directions) to egress's Tx channel.
func (s *Switch) StartMirror(mirrored string, dirs Direction, egress string) (*MirrorSession, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.ports[mirrored]; !ok {
		return nil, fmt.Errorf("switchsim: no port %q on %q", mirrored, s.Name)
	}
	if _, ok := s.ports[egress]; !ok {
		return nil, fmt.Errorf("switchsim: no port %q on %q", egress, s.Name)
	}
	if mirrored == egress {
		return nil, fmt.Errorf("switchsim: cannot mirror %q to itself", mirrored)
	}
	if _, busy := s.mirrors[mirrored]; busy {
		return nil, ErrMirrorConflict{mirrored}
	}
	for _, m := range s.mirrors {
		if m.Egress == egress || m.Mirrored == egress {
			return nil, ErrMirrorConflict{egress}
		}
	}
	m := &MirrorSession{Mirrored: mirrored, Directions: dirs, Egress: egress}
	if s.obsReg != nil {
		labels := []obs.Label{
			obs.L("switch", s.Name), obs.L("mirrored", mirrored), obs.L("egress", egress),
		}
		m.clonedC = s.obsReg.Counter("switchsim_mirror_cloned_total", labels...)
		m.dropsC = s.obsReg.Counter("switchsim_mirror_clone_drops_total", labels...)
		m.faultDropsC = s.obsReg.Counter("switchsim_mirror_fault_drops_total", labels...)
	}
	s.mirrors[mirrored] = m
	return m, nil
}

// StopMirror removes the mirror session on the given mirrored port. It
// reports whether a session existed.
func (s *Switch) StopMirror(mirrored string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.mirrors[mirrored]; !ok {
		return false
	}
	delete(s.mirrors, mirrored)
	return true
}

// Mirrors returns the active sessions sorted by mirrored port name.
func (s *Switch) Mirrors() []*MirrorSession {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*MirrorSession, 0, len(s.mirrors))
	for _, m := range s.mirrors {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Mirrored < out[j].Mirrored })
	return out
}

// Transit records a frame crossing a port in the given direction,
// updating counters and cloning to any mirror session. This is the
// injection point used by the traffic generator: a frame flowing from
// VM A (port P1) to VM B (port P2) is a DirRx transit on P1 and a DirTx
// transit on P2.
func (s *Switch) Transit(port string, dir Direction, f Frame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.ports[port]
	if !ok {
		return fmt.Errorf("switchsim: no port %q on %q", port, s.Name)
	}
	now := s.sched.Now()
	if p.down {
		p.counters.DownDrops++
		return nil
	}
	if dir&DirRx != 0 {
		p.counters.RxBytes += uint64(f.Size)
		p.counters.RxFrames++
	}
	if dir&DirTx != 0 {
		p.counters.TxBytes += uint64(f.Size)
		p.counters.TxFrames++
	}
	if m := s.mirrors[port]; m != nil && dir&m.Directions != 0 {
		s.cloneLocked(now, m, f)
	}
	return nil
}

// cloneLocked enqueues a mirrored copy on the egress port's Tx channel,
// dropping on queue overflow. Must hold s.mu.
func (s *Switch) cloneLocked(now sim.Time, m *MirrorSession, f Frame) {
	if s.cloneFault != nil && s.cloneFault(now) {
		m.FaultDrops++
		m.faultDropsC.IncAt(now)
		return
	}
	eg := s.ports[m.Egress]
	if eg.down {
		m.CloneDrops++
		m.dropsC.IncAt(now)
		eg.counters.TxDrops++
		return
	}
	// Queue backlog in virtual time: how long until the egress channel
	// drains what is already queued.
	if eg.queueFree < now {
		eg.queueFree = now
	}
	backlogNanos := int64(eg.queueFree - now)
	backlogBytes := eg.LineRate.BytesInNanos(backlogNanos)
	if backlogBytes+int64(f.Size) > eg.queueCap {
		m.CloneDrops++
		m.dropsC.IncAt(now)
		eg.counters.TxDrops++
		return
	}
	txNanos := eg.LineRate.TransmitNanos(f.Size)
	eg.queueFree += sim.Time(txNanos)
	m.Cloned++
	m.clonedC.IncAt(now)
	eg.counters.TxBytes += uint64(f.Size)
	eg.counters.TxFrames++
	if r := eg.receiver; r != nil {
		cd := s.cloneFree
		if cd == nil {
			cd = new(cloneDelivery)
		} else {
			s.cloneFree = cd.next
		}
		cd.r, cd.at, cd.f = r, eg.queueFree, f
		s.sched.AtArg(eg.queueFree, s.cloneFn, cd)
	}
}

// deliverClone hands a mirrored frame to its receiver (the AtArg
// callback) and returns the record to the pool.
func (s *Switch) deliverClone(a any) {
	cd := a.(*cloneDelivery)
	r, at, f := cd.r, cd.at, cd.f
	s.mu.Lock()
	cd.r, cd.f = nil, Frame{}
	cd.next = s.cloneFree
	s.cloneFree = cd
	s.mu.Unlock()
	r.DeliverFrame(at, f)
}
