package journal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

func mustCreate(t *testing.T, dir string) *Writer {
	t.Helper()
	w, err := Create(dir, []byte(`{"spec":1}`))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return w
}

func TestAppendAndReadBack(t *testing.T) {
	dir := t.TempDir()
	w := mustCreate(t, dir)
	if _, err := w.Append(0, KindCampaignStart, "", "seed=1"); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, err := w.Append(5*sim.Second, KindSetup, "STAR", "sliver=1"); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs, err := ReadWAL(dir)
	if err != nil {
		t.Fatalf("ReadWAL: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[1].Kind != KindSetup || recs[1].Site != "STAR" || recs[1].SimNs != int64(5*sim.Second) {
		t.Fatalf("bad record: %+v", recs[1])
	}
	if recs[0].Seq != 0 || recs[1].Seq != 1 {
		t.Fatalf("bad seqs: %d, %d", recs[0].Seq, recs[1].Seq)
	}
}

func TestCreateRefusesExistingWAL(t *testing.T) {
	dir := t.TempDir()
	w := mustCreate(t, dir)
	w.Close()
	if _, err := Create(dir, nil); err == nil {
		t.Fatal("second Create should refuse an existing WAL")
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w := mustCreate(t, dir)
	for i := 0; i < 3; i++ {
		if _, err := w.Append(sim.Time(i), KindRemedy, "STAR", "n"); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	w.Close()
	// Simulate a crash mid-write: append half a line.
	path := filepath.Join(dir, WALFile)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"seq":3,"sim_`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, err := ReadWAL(dir)
	if err != nil {
		t.Fatalf("ReadWAL with torn tail: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3 (torn tail dropped)", len(recs))
	}

	// Resume must truncate the tail so new appends frame cleanly.
	w2, manifest, _, hasCP, err := OpenResume(dir)
	if err != nil {
		t.Fatalf("OpenResume: %v", err)
	}
	if string(manifest) != `{"spec":1}` {
		t.Fatalf("manifest round-trip: %q", manifest)
	}
	if hasCP {
		t.Fatal("no checkpoint was written, got one")
	}
	if w2.Prefix() != 3 || !w2.Replaying() {
		t.Fatalf("prefix=%d replaying=%v, want 3/true", w2.Prefix(), w2.Replaying())
	}
	for i := 0; i < 3; i++ {
		replayed, err := w2.Append(sim.Time(i), KindRemedy, "STAR", "n")
		if err != nil || !replayed {
			t.Fatalf("replay append %d: replayed=%v err=%v", i, replayed, err)
		}
	}
	if w2.Replaying() {
		t.Fatal("still replaying after prefix exhausted")
	}
	replayed, err := w2.Append(99, KindCampaignEnd, "", "")
	if err != nil || replayed {
		t.Fatalf("post-prefix append: replayed=%v err=%v", replayed, err)
	}
	w2.Close()
	recs, err = ReadWAL(dir)
	if err != nil {
		t.Fatalf("ReadWAL after resume: %v", err)
	}
	if len(recs) != 4 || recs[3].Kind != KindCampaignEnd {
		t.Fatalf("final WAL: %+v", recs)
	}
}

func TestReplayDivergenceDetected(t *testing.T) {
	dir := t.TempDir()
	w := mustCreate(t, dir)
	if _, err := w.Append(1, KindSetup, "STAR", "sliver=1"); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, _, _, _, err := OpenResume(dir)
	if err != nil {
		t.Fatalf("OpenResume: %v", err)
	}
	defer w2.Close()
	_, err = w2.Append(1, KindSetup, "NCSA", "sliver=1") // different site
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("want DivergenceError, got %v", err)
	}
	if div.Seq != 0 || !strings.Contains(div.Want, "STAR") || !strings.Contains(div.Got, "NCSA") {
		t.Fatalf("divergence detail: %+v", div)
	}
}

func TestCheckpointRoundTripAndVerify(t *testing.T) {
	dir := t.TempDir()
	w := mustCreate(t, dir)
	if _, err := w.Append(1, KindSetup, "STAR", "sliver=1"); err != nil {
		t.Fatal(err)
	}
	cp := Checkpoint{
		Kernel: sim.Checkpoint{Now: 10 * sim.Second, Seq: 42, Events: 40},
		State:  map[string]string{"testbed:STAR": "nics=2", "metrics": "h=abc"},
	}
	if err := w.WriteCheckpoint(10*sim.Second, cp); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if _, err := w.Append(11*sim.Second, KindRemedy, "STAR", "restart"); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, _, stored, hasCP, err := OpenResume(dir)
	if err != nil {
		t.Fatalf("OpenResume: %v", err)
	}
	defer w2.Close()
	if !hasCP || stored.Kernel.Seq != 42 || stored.State["metrics"] != "h=abc" {
		t.Fatalf("stored checkpoint: hasCP=%v %+v", hasCP, stored)
	}
	// Replay: setup, then the identical checkpoint must verify.
	if _, err := w2.Append(1, KindSetup, "STAR", "sliver=1"); err != nil {
		t.Fatal(err)
	}
	if err := w2.WriteCheckpoint(10*sim.Second, cp); err != nil {
		t.Fatalf("checkpoint verify on replay: %v", err)
	}

	// A diverged checkpoint at the same WAL position must be rejected.
	dir2 := t.TempDir()
	wa := mustCreate(t, dir2)
	if err := wa.WriteCheckpoint(10*sim.Second, cp); err != nil {
		t.Fatal(err)
	}
	wa.Close()
	wb, _, _, _, err := OpenResume(dir2)
	if err != nil {
		t.Fatal(err)
	}
	defer wb.Close()
	bad := cp
	bad.State = map[string]string{"testbed:STAR": "nics=1", "metrics": "h=abc"}
	err = wb.WriteCheckpoint(10*sim.Second, bad)
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("want DivergenceError for diverged checkpoint, got %v", err)
	}
}

func TestCorruptLineDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	w := mustCreate(t, dir)
	for i := 0; i < 4; i++ {
		if _, err := w.Append(sim.Time(i), KindRemedy, "S", "n"); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	path := filepath.Join(dir, WALFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// Flip a byte inside record 1's JSON payload.
	lines[1] = strings.Replace(lines[1], `"kind"`, `"kinx"`, 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadWAL(dir)
	if err != nil {
		t.Fatalf("ReadWAL: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1 (everything after the corrupt line dropped)", len(recs))
	}
}
