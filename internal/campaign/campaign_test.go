package campaign

import (
	"strings"
	"testing"

	"repro/internal/journal"
	"repro/internal/remedy"
)

func TestSpecDefaults(t *testing.T) {
	s := Spec{}.WithDefaults()
	if s.Mode != "all" || s.Method != "tcpdump" || s.Seed != 1 {
		t.Errorf("unexpected defaults: %+v", s)
	}
	if s.IntervalSec != 2*s.SampleSec {
		t.Errorf("IntervalSec = %d, want twice SampleSec %d", s.IntervalSec, s.SampleSec)
	}
	if s.CheckpointSec == 0 {
		t.Error("checkpoint cadence must default on")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("defaulted spec must validate: %v", err)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	base := Spec{}.WithDefaults()
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"bad mode", func(s *Spec) { s.Mode = "some" }},
		{"bad method", func(s *Spec) { s.Method = "ebpf" }},
		{"no sites", func(s *Spec) { s.FederationSites = 0 }},
		{"bad checkpoint", func(s *Spec) { s.CheckpointSec = -1 }},
		{"bad rules", func(s *Spec) { s.HealthRules = []byte(`{nope`) }},
		{"bad policy", func(s *Spec) { s.Remedy = &remedy.Policy{} }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := base
			c.mut(&s)
			if err := s.Validate(); err == nil {
				t.Error("validation should fail")
			}
		})
	}
}

// smallSpec is the cheapest campaign that exercises the whole pipeline.
func smallSpec() Spec {
	pol := remedy.DefaultPolicy()
	return Spec{
		FederationSites: 2, Runs: 1, Samples: 1,
		SampleSec: 2, IntervalSec: 4, Seed: 3,
		Remedy: &pol, CheckpointSec: 5,
	}.WithDefaults()
}

func TestRunJournalsCampaign(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(smallSpec(), dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed || res.Profile == nil {
		t.Fatalf("clean campaign: crashed=%v profile=%v", res.Crashed, res.Profile)
	}
	recs, err := journal.ReadWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 3 {
		t.Fatalf("WAL holds %d records, want at least start/mutations/end", len(recs))
	}
	if recs[0].Kind != journal.KindCampaignStart {
		t.Errorf("first record %q, want campaign-start", recs[0].Kind)
	}
	if last := recs[len(recs)-1]; last.Kind != journal.KindCampaignEnd {
		t.Errorf("last record %q, want campaign-end", last.Kind)
	}
	kinds := map[string]int{}
	for _, r := range recs {
		kinds[r.Kind]++
	}
	if kinds[journal.KindSetup] == 0 || kinds[journal.KindRelease] == 0 {
		t.Errorf("WAL missing setup/release mutations: %v", kinds)
	}
	if kinds[journal.KindCheckpoint] == 0 {
		t.Errorf("WAL holds no checkpoints: %v", kinds)
	}
}

func TestRunRefusesOccupiedDir(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(smallSpec(), dir, true); err != nil {
		t.Fatal(err)
	}
	_, err := Run(smallSpec(), dir, true)
	if err == nil || !strings.Contains(err.Error(), "resume") {
		t.Errorf("second Run in the same dir: err = %v, want refusal pointing at resume", err)
	}
}

func TestResumeOfFinishedCampaignReplaysClean(t *testing.T) {
	dir := t.TempDir()
	first, err := Run(smallSpec(), dir, true)
	if err != nil {
		t.Fatal(err)
	}
	// Resuming a campaign that already finished replays the whole WAL,
	// verifies it, and lands in the same final state.
	again, err := Resume(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if again.Replayed == 0 {
		t.Error("resume verified no records")
	}
	if again.Profile == nil || again.Profile.SuccessRate() != first.Profile.SuccessRate() {
		t.Error("replayed campaign diverged from the original")
	}
}
