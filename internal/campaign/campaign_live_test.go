package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faults"
	"repro/internal/livemon"
	"repro/internal/sim"
)

// liveServer builds a livemon server with an on-disk ring under dir.
func liveServer(t *testing.T, dir string) *livemon.Server {
	t.Helper()
	s, err := livemon.New(livemon.Config{Dir: dir, PublishEvery: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// walBytes reads the raw WAL file — the byte-identity artifact.
func walBytes(t *testing.T, dir string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "wal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func metricsProm(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLiveSinkDoesNotPerturbArtifacts is the determinism gate for the
// telemetry plane: the same seeded campaign run with and without a live
// sink attached must produce byte-identical WALs and metric exports.
// The sink publishes from the drive loop, so attaching it must not add
// a single kernel event.
func TestLiveSinkDoesNotPerturbArtifacts(t *testing.T) {
	spec := smallSpec()

	plainDir := t.TempDir()
	plain, err := Run(spec, plainDir, true)
	if err != nil {
		t.Fatal(err)
	}

	servedDir := t.TempDir()
	live := liveServer(t, t.TempDir())
	served, err := RunLive(spec, servedDir, true, live)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(walBytes(t, plainDir), walBytes(t, servedDir)) {
		t.Fatal("WAL differs between served and unserved runs")
	}
	if !bytes.Equal(metricsProm(t, plain), metricsProm(t, served)) {
		t.Fatal("metrics export differs between served and unserved runs")
	}
	// The sink actually saw the run: snapshots in the ring, journal
	// gauges on the runtime registry.
	if live.RingRef().Len() == 0 {
		t.Fatal("live ring holds no records after a served campaign")
	}
	found := false
	for _, mp := range live.Runtime().Snapshot() {
		if mp.Name == "patchwork_campaign_wal_appended" && mp.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("runtime registry missing campaign WAL gauges")
	}
}

// TestLiveCrashResumeRecoversRing runs a crashing campaign with a live
// sink, resumes it with a fresh sink over the same ring directory, and
// checks (a) the resumed WAL byte-matches an uninterrupted baseline and
// (b) the ring suppresses replayed history instead of duplicating it.
func TestLiveCrashResumeRecoversRing(t *testing.T) {
	spec := smallSpec()
	spec.Faults = &faults.Plan{CrashPoints: []faults.CrashPoint{{AtSec: 6}}}

	baseDir := t.TempDir()
	if _, err := Run(spec, baseDir, false); err != nil { // no-kill baseline
		t.Fatal(err)
	}

	crashDir, ringDir := t.TempDir(), t.TempDir()
	live := liveServer(t, ringDir)
	res, err := RunLive(spec, crashDir, true, live)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed {
		t.Fatal("campaign did not crash at the injected crash point")
	}
	if live.RingRef().Len() == 0 {
		t.Fatal("ring empty at crash")
	}
	if err := live.Close(); err != nil { // the "process" died; flush like its exit handler would
		t.Fatal(err)
	}

	// Resume with a fresh server over the same ring directory — the
	// recovered frontier suppresses the replayed prefix.
	live2 := liveServer(t, ringDir)
	if live2.RingRef().Recovered() == 0 {
		t.Fatal("reopened ring recovered nothing")
	}
	res2, err := ResumeLive(crashDir, true, live2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Crashed || res2.Profile == nil {
		t.Fatalf("resume did not finish: crashed=%v", res2.Crashed)
	}
	if res2.Replayed == 0 {
		t.Fatal("resume verified no journal records")
	}

	if !bytes.Equal(walBytes(t, baseDir), walBytes(t, crashDir)) {
		t.Fatal("crash+resume WAL differs from uninterrupted baseline")
	}

	// No snapshot in the ring may predate the recovered frontier twice:
	// sequence numbers must stay strictly increasing across both lives.
	var last uint64
	ok := true
	live2.RingRef().Scan(func(rec livemon.Record) bool {
		if rec.Seq <= last {
			ok = false
			return false
		}
		last = rec.Seq
		return true
	})
	if !ok {
		t.Fatal("ring sequence numbers not strictly increasing after resume")
	}
}
