package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/prof"
)

// promDump renders a result's sim registry for artifact comparison.
func promDump(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestProvenanceDeterministicAcrossLanes is the campaign-level gate for
// the tentpole guarantee: the same spec produces a byte-identical
// provenance trace serially and under sharded lanes, and recording the
// trace never perturbs the run's other artifacts.
func TestProvenanceDeterministicAcrossLanes(t *testing.T) {
	spec := smallSpec()
	spec.FederationSites = 3

	base, err := RunExec(spec, t.TempDir(), true, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	baseProm := promDump(t, base)

	serialPath := filepath.Join(t.TempDir(), "serial.trace")
	serial, err := RunExec(spec, t.TempDir(), true, Exec{ProvenancePath: serialPath})
	if err != nil {
		t.Fatal(err)
	}
	lanedPath := filepath.Join(t.TempDir(), "laned.trace")
	laned, err := RunExec(spec, t.TempDir(), true, Exec{
		Lanes: 2, Workers: 2, ProvenancePath: lanedPath,
	})
	if err != nil {
		t.Fatal(err)
	}

	sb, err := os.ReadFile(serialPath)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := os.ReadFile(lanedPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb, lb) {
		t.Fatal("provenance trace differs between serial and laned execution")
	}
	if !bytes.Equal(baseProm, promDump(t, serial)) {
		t.Error("recording provenance perturbed the metrics artifact")
	}
	if !bytes.Equal(baseProm, promDump(t, laned)) {
		t.Error("laned provenance run perturbed the metrics artifact")
	}

	tr, err := prof.LoadTrace(serialPath)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(tr.Events)) != serial.ProvRecords {
		t.Errorf("loaded %d events, writer reported %d", len(tr.Events), serial.ProvRecords)
	}
	if len(tr.Events) == 0 {
		t.Fatal("campaign emitted no provenance records")
	}
	if len(tr.TagNames) != spec.FederationSites {
		t.Errorf("trace defines %d site tags, want %d", len(tr.TagNames), spec.FederationSites)
	}
	tagged := false
	for _, e := range tr.Events {
		if e.Tag != 0 {
			tagged = true
			break
		}
	}
	if !tagged {
		t.Error("no events attributed to any site")
	}
	if path := tr.CriticalPath(); len(path) == 0 {
		t.Error("trace yields no critical path")
	}
}

// TestProfileExec checks the wall-plane profiler attaches under lanes
// and never perturbs sim artifacts.
func TestProfileExec(t *testing.T) {
	spec := smallSpec()
	spec.FederationSites = 3

	base, err := RunExec(spec, t.TempDir(), true, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunExec(spec, t.TempDir(), true, Exec{Lanes: 2, Workers: 2, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.LaneProfiler == nil {
		t.Fatal("laned profiled run returned no profiler")
	}
	s := res.LaneProfiler.Summary()
	if s.Workers != 2 || s.Lanes != 2 {
		t.Errorf("summary workers/lanes = %d/%d, want 2/2", s.Workers, s.Lanes)
	}
	if !bytes.Equal(promDump(t, base), promDump(t, res)) {
		t.Error("profiling perturbed the metrics artifact")
	}

	// Serial execution has no lane scheduler to profile.
	serial, err := RunExec(spec, t.TempDir(), true, Exec{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if serial.LaneProfiler != nil {
		t.Error("serial run should not attach a lane profiler")
	}
}
