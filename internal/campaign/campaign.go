// Package campaign runs a complete, crash-consistent profiling
// campaign: it builds the simulated federation from a serializable
// Spec, wires observability, fault injection, health monitoring, and
// the remediation supervisor around the Patchwork coordinator, and
// journals every deployment mutation to a write-ahead log with
// periodic checkpoints (see internal/journal).
//
// The Spec is the campaign's entire input: it is written verbatim as
// the journal manifest, and Resume rebuilds an identical world from it.
// Because every stochastic decision flows from the Spec's seed and all
// scheduling happens on the sim kernel, a resumed campaign replays the
// dead campaign's history deterministically — the journal verifies the
// replay record-by-record — and then continues to a finish that is
// byte-identical to a run that never died.
package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"syscall"

	"repro/internal/capture"
	patchwork "repro/internal/core"
	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/hostsim"
	"repro/internal/journal"
	"repro/internal/lanes"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/remedy"
	"repro/internal/sim"
	"repro/internal/storefault"
	"repro/internal/telemetry"
	"repro/internal/testbed"
	"repro/internal/trafficgen"
)

// Spec is the serializable campaign input — the journal manifest. Every
// field that influences the simulation must live here: resume rebuilds
// the world from the manifest alone, and anything omitted would make
// replay diverge.
type Spec struct {
	// Mode is "all" (all-experiment) or "single" (single-experiment).
	Mode string `json:"mode"`
	// Sites restricts profiling to these sites (required for "single").
	Sites []string `json:"sites,omitempty"`
	// FederationSites is the number of sites in the simulated federation.
	FederationSites int `json:"federation_sites"`
	// Runs, Samples, SampleSec, IntervalSec shape the sampling schedule.
	Runs        int `json:"runs"`
	Samples     int `json:"samples"`
	SampleSec   int `json:"sample_sec"`
	IntervalSec int `json:"interval_sec"`
	// TruncateBytes is the stored snap length.
	TruncateBytes int `json:"truncate_bytes"`
	// Method is the capture method: "tcpdump", "dpdk", or "fpga".
	Method string `json:"method"`
	// Instances is the listener count requested per site (0 = default).
	Instances int `json:"instances,omitempty"`
	// Seed drives every stochastic decision in the campaign.
	Seed uint64 `json:"seed"`
	// StorageLimitBytes caps captured bytes per instance (0 = default).
	StorageLimitBytes int64 `json:"storage_limit_bytes,omitempty"`
	// Nice enables runtime footprint scaling.
	Nice bool `json:"nice,omitempty"`
	// HealthRules overrides the bundled alert rules (raw rule JSON).
	HealthRules json.RawMessage `json:"health_rules,omitempty"`
	// Faults is the fault plan to inject; nil runs clean.
	Faults *faults.Plan `json:"faults,omitempty"`
	// Remedy is the remediation policy; nil runs without the supervisor.
	Remedy *remedy.Policy `json:"remedy,omitempty"`
	// CheckpointSec is the checkpoint cadence in sim seconds.
	CheckpointSec int `json:"checkpoint_sec"`
}

// WithDefaults fills the zero fields with the CLI defaults.
func (s Spec) WithDefaults() Spec {
	if s.Mode == "" {
		s.Mode = "all"
	}
	if s.FederationSites == 0 {
		s.FederationSites = 6
	}
	if s.Runs == 0 {
		s.Runs = 3
	}
	if s.Samples == 0 {
		s.Samples = 2
	}
	if s.SampleSec == 0 {
		s.SampleSec = 5
	}
	if s.IntervalSec == 0 {
		s.IntervalSec = 2 * s.SampleSec
	}
	if s.TruncateBytes == 0 {
		s.TruncateBytes = 200
	}
	if s.Method == "" {
		s.Method = "tcpdump"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.CheckpointSec == 0 {
		s.CheckpointSec = 60
	}
	return s
}

// Validate rejects specs that cannot build a world.
func (s Spec) Validate() error {
	if s.Mode != "all" && s.Mode != "single" {
		return fmt.Errorf("campaign: unknown mode %q", s.Mode)
	}
	if _, err := s.method(); err != nil {
		return err
	}
	if s.FederationSites < 1 {
		return fmt.Errorf("campaign: federation needs at least one site")
	}
	if s.Runs < 0 || s.Samples < 0 || s.SampleSec < 1 || s.IntervalSec < 1 {
		return fmt.Errorf("campaign: invalid sampling schedule")
	}
	if s.CheckpointSec < 1 {
		return fmt.Errorf("campaign: checkpoint cadence %ds invalid", s.CheckpointSec)
	}
	if len(s.HealthRules) > 0 {
		if _, err := health.ParseBytes(s.HealthRules); err != nil {
			return fmt.Errorf("campaign: health rules: %w", err)
		}
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(); err != nil {
			return err
		}
	}
	if s.Remedy != nil {
		if err := s.Remedy.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func (s Spec) method() (capture.Method, error) {
	switch s.Method {
	case "tcpdump":
		return capture.MethodTcpdump, nil
	case "dpdk":
		return capture.MethodDPDK, nil
	case "fpga":
		return capture.MethodFPGADPDK, nil
	}
	return 0, fmt.Errorf("campaign: unknown capture method %q", s.Method)
}

func (s Spec) mode() (patchwork.Mode, error) {
	switch s.Mode {
	case "all":
		return patchwork.AllExperiment, nil
	case "single":
		return patchwork.SingleExperiment, nil
	}
	return 0, fmt.Errorf("campaign: unknown mode %q", s.Mode)
}

// Result is what a campaign run (or resume) produced. On a crash-point
// abort, Crashed is true and Profile is nil — resume the directory to
// continue.
type Result struct {
	Profile    *patchwork.Profile
	Registry   *obs.Registry
	Tracer     *obs.Tracer
	Monitor    *health.Monitor
	Supervisor *remedy.Supervisor // nil without a remediation policy
	Injector   *faults.Engine     // nil without a fault plan
	Federation *testbed.Federation
	Crashed    bool
	CrashedAt  sim.Time
	// Replayed is the number of WAL records verified during replay
	// (zero on a fresh run).
	Replayed int
	Dir      string
	// ProvRecords counts provenance records streamed to
	// Exec.ProvenancePath (zero when provenance was off).
	ProvRecords uint64
	// LaneProfiler is the wall-clock lane profiler (nil unless
	// Exec.Profile was set on a laned run).
	LaneProfiler *lanes.Profiler
}

// LiveSink is the live telemetry plane's view of a running campaign
// (implemented by livemon.Server). The campaign calls PublishTick from
// its drive loop between kernel steps — never from a scheduled kernel
// event, so attaching a sink cannot change the event sequence and the
// campaign's artifacts stay byte-identical with or without one.
type LiveSink interface {
	// Attach wires the sim-time registry and health monitor before the
	// simulation starts.
	Attach(reg *obs.Registry, mon *health.Monitor)
	// Runtime is the sink's wall-clock registry, where the campaign
	// registers journal-progress gauges.
	Runtime() *obs.Registry
	// Interval is the sim-time cadence PublishTick should be driven at.
	Interval() sim.Duration
	// PublishTick snapshots and publishes; called on the sim goroutine.
	PublishTick(now sim.Time)
}

// profSink is the optional live-sink capability for serving profiling
// state (implemented by livemon.Server). Checked by type assertion so
// LiveSink implementations without it keep working unchanged. The
// callbacks are safe to invoke from HTTP goroutines mid-run.
type profSink interface {
	// SetProfSources wires the wall-plane lane profiler (summary and
	// Chrome trace; both nil when profiling is off) and the provenance
	// trace (path empty when provenance is off; provFlush drains
	// buffered frames before a download).
	SetProfSources(summary func() any, chrome func(io.Writer) error, provenancePath string, provFlush func() error)
}

// Exec selects the execution strategy that drives the campaign's
// simulation. The zero value is the serial kernel. Exec is an execution
// knob, not part of the campaign Spec: it is never journaled, and every
// Exec must produce byte-identical artifacts — a campaign journaled
// under one lane count resumes correctly under any other.
type Exec struct {
	// Lanes shards the dataplane into per-site event lanes
	// (internal/lanes); <= 1 drives the kernel serially.
	Lanes int
	// Workers bounds goroutines executing lanes in parallel; 0 defaults
	// to min(Lanes, GOMAXPROCS).
	Workers int
	// ProvenancePath, when set, streams the causal event DAG (one
	// record per schedule call, with the scheduling event as parent) to
	// a CRC-framed trace at this path. Pure observation: the trace is
	// byte-identical for the same seed under any Lanes/Workers setting,
	// and enabling it does not perturb the sim artifacts.
	ProvenancePath string
	// Profile attaches the wall-clock lane profiler (laned execution
	// only): per-worker busy timelines, barrier stalls, merge costs.
	// Wall-plane data never enters sim-time artifacts.
	Profile bool
	// FS routes every campaign artifact write (journal WAL, checkpoints,
	// provenance trace) through an explicit filesystem seam — the
	// storage-chaos harness injects faults here. nil is the real disk.
	FS storefault.FS
	// CrashArm arms the crash-point matrix kill switch: immediately
	// after the fresh WAL record carrying sequence CrashAtSeq is
	// written, the journal writer plays dead — subsequent appends and
	// checkpoint swaps silently stop reaching disk, exactly as if the
	// process had been killed at that byte boundary — and the run
	// returns with Result.Crashed set. Resuming the directory must then
	// reproduce the uninterrupted run byte-for-byte.
	CrashArm   bool
	CrashAtSeq uint64
	// CrashAfterCheckpointSwap shifts the probed boundary: when
	// CrashAtSeq lands on a checkpoint record, the checkpoint file swap
	// completes before the writer dies (both sides of the rename are
	// crash points).
	CrashAfterCheckpointSwap bool
}

// defaultSpanCap bounds the tracer's retained spans/counter samples on
// long campaigns (satisfied drops count into
// patchwork_trace_dropped_total). Generous enough that short runs never
// trip it, so artifacts match earlier unbounded behavior.
const defaultSpanCap = 1 << 20

// defaultTraceCounters are the registry series sampled into the tracer
// as Chrome-trace counter events on every health tick, so flame views
// show load alongside spans.
var defaultTraceCounters = []string{
	"sim_events_processed",
	"capture_frames_captured_total",
	"capture_frames_dropped_total",
}

// Run starts a fresh campaign in dir (which must not already hold
// one). When kill is true, injected crash points abort the run —
// Result.Crashed reports the abort; resume the directory to continue.
// When kill is false, crash points are journaled but not honored: the
// uninterrupted baseline whose outputs a kill+resume pair must match.
func Run(spec Spec, dir string, kill bool) (*Result, error) {
	return RunExecLive(spec, dir, kill, Exec{}, nil)
}

// RunLive is Run with an optional live telemetry sink.
func RunLive(spec Spec, dir string, kill bool, live LiveSink) (*Result, error) {
	return RunExecLive(spec, dir, kill, Exec{}, live)
}

// RunExec is Run under an explicit execution strategy.
func RunExec(spec Spec, dir string, kill bool, exec Exec) (*Result, error) {
	return RunExecLive(spec, dir, kill, exec, nil)
}

// RunExecLive is Run with an execution strategy and an optional live
// telemetry sink.
func RunExecLive(spec Spec, dir string, kill bool, exec Exec, live LiveSink) (*Result, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	manifest, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	w, err := journal.CreateFS(exec.FS, dir, manifest)
	if err != nil {
		return nil, err
	}
	return run(spec, w, dir, kill, live, exec)
}

// Resume reopens the campaign journaled in dir, rebuilds the world from
// its manifest, replays the WAL prefix (verifying every regenerated
// record), and continues where the dead campaign stopped. Crash points
// already in the WAL are skipped; new ones abort again when kill is
// true.
func Resume(dir string, kill bool) (*Result, error) {
	return ResumeExecLive(dir, kill, Exec{}, nil)
}

// ResumeLive is Resume with an optional live telemetry sink.
func ResumeLive(dir string, kill bool, live LiveSink) (*Result, error) {
	return ResumeExecLive(dir, kill, Exec{}, live)
}

// ResumeExec is Resume under an explicit execution strategy. The
// strategy need not match the one the campaign crashed under: the WAL
// replay verifies the regenerated prefix either way.
func ResumeExec(dir string, kill bool, exec Exec) (*Result, error) {
	return ResumeExecLive(dir, kill, exec, nil)
}

// ResumeExecLive is Resume with an execution strategy and an optional
// live telemetry sink.
func ResumeExecLive(dir string, kill bool, exec Exec, live LiveSink) (*Result, error) {
	w, manifest, _, _, err := journal.OpenResumeFS(exec.FS, dir)
	if err != nil {
		return nil, err
	}
	var spec Spec
	if err := json.Unmarshal(manifest, &spec); err != nil {
		w.Close()
		return nil, fmt.Errorf("campaign: corrupt manifest: %w", err)
	}
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		w.Close()
		return nil, err
	}
	return run(spec, w, dir, kill, live, exec)
}

// campaign holds the run's journaling state shared by the mutation
// sink, the remedy sink, and the crash hook.
type campaign struct {
	k    *sim.Kernel
	w    *journal.Writer
	kill bool

	crashed   bool
	crashedAt sim.Time
	err       error // first journal/divergence error; aborts the drive loop
}

// Mutate implements core's MutationSink: every deployment mutation
// lands in the WAL in the order it happened.
func (c *campaign) Mutate(kind, site, note string) {
	if c.err != nil {
		return
	}
	if _, err := c.w.Append(c.k.Now(), kind, site, note); err != nil {
		c.err = err
	}
}

// remedyJournal is the supervisor's journal sink.
func (c *campaign) remedyJournal(now sim.Time, site, note string) error {
	if c.err != nil {
		return c.err
	}
	_, err := c.w.Append(now, journal.KindRemedy, site, note)
	if err != nil && c.err == nil {
		c.err = err
	}
	return err
}

// onCrashPoint journals the crash and, when killing is enabled and the
// record is new (not replayed from a previous life), aborts the drive
// loop — the simulation-level equivalent of the process dying.
func (c *campaign) onCrashPoint(at sim.Time) {
	if c.err != nil || c.crashed {
		return
	}
	replayed, err := c.w.Append(at, journal.KindCrash, "", "injected crash point")
	if err != nil {
		c.err = err
		return
	}
	if !replayed && c.kill {
		c.crashed, c.crashedAt = true, at
	}
}

// wireJournalGauges registers campaign-progress gauges on the sink's
// wall-clock registry: WAL append/replay/checkpoint counters and the
// checkpoint lag (sim time since the last checkpoint). They refresh on
// every scrape via a collector reading the writer's atomic stats.
func wireJournalGauges(r *obs.Registry, w *journal.Writer) {
	r.Help("patchwork_campaign_wal_appended", "WAL records appended by this life")
	r.Help("patchwork_campaign_wal_replayed", "WAL prefix records verified during resume replay")
	r.Help("patchwork_campaign_checkpoints", "checkpoints handled by this life")
	r.Help("patchwork_campaign_checkpoint_lag_sim_sec", "sim seconds between the last WAL record and the last checkpoint")
	appended := r.Gauge("patchwork_campaign_wal_appended")
	replayed := r.Gauge("patchwork_campaign_wal_replayed")
	checkpoints := r.Gauge("patchwork_campaign_checkpoints")
	lag := r.Gauge("patchwork_campaign_checkpoint_lag_sim_sec")
	r.RegisterCollector(func() {
		st := w.Stats()
		appended.Set(float64(st.Appended))
		replayed.Set(float64(st.Replayed))
		checkpoints.Set(float64(st.Checkpoints))
		lag.Set(float64(st.LastAppendSimNs-st.LastCheckpointSimNs) / float64(sim.Second))
	})
}

// run builds the world described by spec around the journal writer and
// drives it to completion, crash, or divergence.
func run(spec Spec, w *journal.Writer, dir string, kill bool, live LiveSink, exec Exec) (*Result, error) {
	defer w.Close()
	capMethod, err := spec.method()
	if err != nil {
		return nil, err
	}
	mode, err := spec.mode()
	if err != nil {
		return nil, err
	}

	// The federation is a slice of the default 28-site layout, rebuilt on
	// a fresh kernel so event sequence numbers start from zero.
	k := sim.NewKernel()
	full := testbed.DefaultFederation(k, spec.Seed)
	specs := make([]testbed.SiteSpec, 0, spec.FederationSites)
	for i, s := range full.Sites() {
		if i >= spec.FederationSites {
			break
		}
		specs = append(specs, s.Spec)
	}
	k = sim.NewKernel()

	// Causal provenance streams every schedule call from here on; the
	// hook is installed before the federation is built so the trace
	// covers setup events too.
	var pw *prof.Writer
	if exec.ProvenancePath != "" {
		if pw, err = prof.CreateTraceFS(exec.FS, exec.ProvenancePath); err != nil {
			return nil, err
		}
		defer pw.Close()
		k.SetProvenance(pw.Record)
	}

	fed, err := testbed.NewFederation(k, specs)
	if err != nil {
		return nil, err
	}

	// Sharded execution: partition sites across dataplane lanes by port
	// count (a proxy for frames per window) and rebind each site's
	// dataplane — switch, capture engines, traffic driver — to its
	// lane. Must happen before any dataplane traffic is scheduled.
	// With provenance on, each site's scheduler is additionally wrapped
	// so its schedule calls carry the site's tag — in serial and laned
	// mode alike, keeping the traces byte-identical.
	var world *lanes.World
	var profiler *lanes.Profiler
	if exec.Lanes > 1 {
		world = lanes.NewWorld(k, lanes.Config{Lanes: exec.Lanes, Workers: exec.Workers})
		defer world.Close()
		if exec.Profile {
			profiler = world.EnableProfiling(0)
		}
	}
	if world != nil || pw != nil {
		var assign map[string]int32
		if world != nil {
			loads := make([]lanes.SiteLoad, 0, len(fed.Sites()))
			for _, s := range fed.Sites() {
				loads = append(loads, lanes.SiteLoad{
					Name:   s.Spec.Name,
					Weight: s.Spec.Downlinks + s.Spec.Uplinks,
				})
			}
			assign = lanes.PartitionSites(loads, exec.Lanes)
		}
		for i, s := range fed.Sites() {
			var sched sim.Scheduler = k
			if world != nil {
				sched = world.Lane(int(assign[s.Spec.Name]))
			}
			if pw != nil {
				tag := int32(i + 1)
				pw.DefTag(tag, s.Spec.Name)
				sched = prof.TagScheduler(sched, tag)
			}
			s.SetScheduler(sched)
		}
	}

	reg := obs.NewKernelRegistry(k)
	obs.CollectKernel(reg, k)
	fed.SetObs(reg)
	tracer := obs.NewKernelTracer(k)
	reg.Help("patchwork_trace_dropped_total", "spans and counter samples dropped by the tracer's memory cap")
	tracer.SetSpanCap(defaultSpanCap, reg.Counter("patchwork_trace_dropped_total"))

	c := &campaign{k: k, w: w, kill: kill}

	var injector *faults.Engine
	if spec.Faults != nil {
		injector, err = faults.NewEngine(k, spec.Seed, *spec.Faults)
		if err != nil {
			return nil, err
		}
		injector.SetObs(reg)
		injector.SetCrashFn(c.onCrashPoint)
		if err := injector.Arm(fed); err != nil {
			return nil, err
		}
	}

	rules := health.DefaultRules()
	if len(spec.HealthRules) > 0 {
		if rules, err = health.ParseBytes(spec.HealthRules); err != nil {
			return nil, err
		}
	}
	monitor, err := health.NewMonitor(k, reg, tracer, health.Config{
		Rules:         rules,
		TraceCounters: defaultTraceCounters,
	})
	if err != nil {
		return nil, err
	}
	monitor.Start()

	store := telemetry.NewStore()
	poller := telemetry.NewPoller(k, store, 30*sim.Second)
	profiles := trafficgen.MakeSiteProfiles(spec.Seed, len(fed.Sites()))
	var drivers []*patchwork.TrafficDriver
	for i, s := range fed.Sites() {
		poller.Watch(s.Switch)
		gen := trafficgen.NewGenerator(profiles[i], spec.Seed+uint64(i))
		d := patchwork.NewTrafficDriver(s.Scheduler(), s, gen, nil)
		d.WindowFrames = 150
		drivers = append(drivers, d)
		d.Start()
	}
	poller.Start()

	cfg := patchwork.Config{
		Mode:              mode,
		Sites:             spec.Sites,
		SampleDuration:    sim.Duration(spec.SampleSec) * sim.Second,
		SampleInterval:    sim.Duration(spec.IntervalSec) * sim.Second,
		SamplesPerRun:     spec.Samples,
		Runs:              spec.Runs,
		TruncateBytes:     spec.TruncateBytes,
		Method:            capMethod,
		InstancesWanted:   spec.Instances,
		Seed:              spec.Seed,
		StorageLimitBytes: spec.StorageLimitBytes,
		Obs:               reg,
		Tracer:            tracer,
		Faults:            injector,
		Storage:           &hostsim.Config{},
		LogSink:           monitor,
		Mutations:         c,
	}
	if spec.Nice {
		cfg.Nice = &patchwork.NicePolicy{ScaleDownFreeNICs: 0, ScaleUpFreeNICs: 1}
	}
	coord, err := patchwork.NewCoordinator(fed, store, poller, cfg)
	if err != nil {
		return nil, err
	}

	var sup *remedy.Supervisor
	if spec.Remedy != nil {
		sup, err = remedy.NewSupervisor(k, remedy.Config{
			Policy:  *spec.Remedy,
			Target:  coord,
			Seed:    spec.Seed,
			Obs:     reg,
			Logf:    monitor.Logf,
			Journal: c.remedyJournal,
		})
		if err != nil {
			return nil, err
		}
		sup.Attach(monitor)
	}

	// Storage-error accounting and graceful ENOSPC degradation: every
	// failed artifact write counts under patchwork_storage_errors_total
	// (watched by the bundled storage-errors health rule), and a full
	// volume pauses capture so the disk stops filling — the free-space
	// remediation evicts harvested bytes and resumes capture. The hook
	// fires only on write errors, so clean runs are byte-identical with
	// or without it.
	reg.Help("patchwork_storage_errors_total", "failed campaign artifact writes by artifact")
	w.SetErrorHook(func(op string, werr error) bool {
		reg.Counter("patchwork_storage_errors_total", obs.L("artifact", op)).Inc()
		if errors.Is(werr, syscall.ENOSPC) {
			n := coord.PauseCapture(true)
			monitor.Logf("campaign", "error",
				"journal %s hit ENOSPC: paused %d capture engines, retrying once", op, n)
			return true
		}
		monitor.Logf("campaign", "error", "journal %s failed: %v", op, werr)
		return false
	})
	if exec.CrashArm {
		w.SetCrashAfter(exec.CrashAtSeq, exec.CrashAfterCheckpointSwap)
	}

	replayed := w.Prefix()
	if _, err := w.Append(0, journal.KindCampaignStart, "",
		fmt.Sprintf("seed=%d sites=%d mode=%s", spec.Seed, len(fed.Sites()), spec.Mode)); err != nil {
		return nil, err
	}

	checkpoint := func(now sim.Time) {
		if c.err != nil || c.crashed {
			return
		}
		cp := journal.Checkpoint{
			Kernel: k.Checkpoint(),
			State:  stateDigests(fed, reg, monitor, sup),
		}
		if err := w.WriteCheckpoint(now, cp); err != nil {
			c.err = err
		}
	}
	k.Every(sim.Duration(spec.CheckpointSec)*sim.Second, checkpoint)

	// Live telemetry publishes from the drive loop, between kernel
	// steps, on the sim goroutine. Nothing is scheduled on the kernel:
	// the event sequence — and therefore every sim-time artifact — is
	// byte-identical whether or not a sink is attached.
	var publishNext sim.Time
	if live != nil {
		live.Attach(reg, monitor)
		wireJournalGauges(live.Runtime(), w)
		if ps, ok := live.(profSink); ok && (profiler != nil || pw != nil) {
			var summary func() any
			var chrome func(io.Writer) error
			if profiler != nil {
				summary = func() any { return profiler.Summary() }
				chrome = profiler.WriteChromeTrace
			}
			var provFlush func() error
			if pw != nil {
				provFlush = pw.Flush
			}
			ps.SetProfSources(summary, chrome, exec.ProvenancePath, provFlush)
		}
	}

	var prof *patchwork.Profile
	var runErr error
	finished := false
	coord.Start(func(p *patchwork.Profile, err error) {
		prof, runErr = p, err
		finished = true
	})
	step := k.Step
	if world != nil {
		step = world.Step
	}
	for !finished && !c.crashed && c.err == nil && !w.CrashSimulated() {
		if !step() {
			return nil, fmt.Errorf("campaign: simulation stalled before completion")
		}
		if live != nil && k.Now() >= publishNext {
			live.PublishTick(k.Now())
			publishNext = k.Now() + live.Interval()
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	if live != nil {
		// One final publish so the served view reflects the end state
		// (completion or the crash point).
		live.PublishTick(k.Now())
	}

	res := &Result{
		Registry: reg, Tracer: tracer, Monitor: monitor,
		Supervisor: sup, Injector: injector, Federation: fed,
		Replayed: replayed, Dir: dir,
		LaneProfiler: profiler,
	}
	if pw != nil {
		res.ProvRecords = pw.Records()
		if err := pw.Close(); err != nil {
			return nil, fmt.Errorf("campaign: provenance trace: %w", err)
		}
	}
	if c.crashed || w.CrashSimulated() {
		// The simulated process died here: no teardown, no final
		// checkpoint — exactly the state a real crash leaves behind.
		// (Either a fault-plan crash point fired, or the crash-point
		// matrix killed the journal writer at its armed WAL boundary.)
		res.Crashed, res.CrashedAt = true, c.crashedAt
		if !c.crashed {
			res.CrashedAt = k.Now()
		}
		return res, nil
	}
	if runErr != nil {
		return nil, runErr
	}
	for _, d := range drivers {
		d.Stop()
	}
	poller.Stop()
	monitor.Stop()

	checkpoint(k.Now())
	if c.err != nil {
		return nil, c.err
	}
	if _, err := w.Append(k.Now(), journal.KindCampaignEnd, "",
		fmt.Sprintf("sites=%d success_rate=%.2f", len(prof.Bundles), prof.SuccessRate())); err != nil {
		return nil, err
	}
	if w.CrashSimulated() {
		// The armed boundary landed on the teardown records (final
		// checkpoint or campaign end): the WAL tail is missing, so this
		// is a crash, not a completion — resume writes the tail for real.
		res.Crashed, res.CrashedAt = true, k.Now()
		return res, nil
	}
	if w.Replaying() {
		return nil, fmt.Errorf("campaign: finished with %d unreplayed WAL records — the journal is from a longer run",
			w.Prefix())
	}
	res.Profile = prof
	return res, nil
}

// stateDigests renders every stateful subsystem as a deterministic
// string: per-site free resources, a metrics-dump hash, alert and
// remediation counters. Replay verification string-compares these, so
// any nondeterminism shows up as a divergence error at the next
// checkpoint instead of silently corrupting the resumed run.
func stateDigests(fed *testbed.Federation, reg *obs.Registry, m *health.Monitor, sup *remedy.Supervisor) map[string]string {
	out := make(map[string]string)
	sites := fed.Sites()
	sorted := make([]*testbed.Site, len(sites))
	copy(sorted, sites)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Spec.Name < sorted[j].Spec.Name })
	for _, s := range sorted {
		out["testbed:"+s.Spec.Name] = fmt.Sprintf("nics=%d fpga=%d cores=%d storage=%d",
			s.FreeDedicatedNICs(), s.FreeFPGANICs(), s.FreeCores(), int64(s.FreeStorage()))
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err == nil {
		h := fnv.New64a()
		h.Write(buf.Bytes())
		out["metrics"] = fmt.Sprintf("fnv64a=%016x series=%d", h.Sum64(), bytes.Count(buf.Bytes(), []byte{'\n'}))
	}
	out["alerts"] = fmt.Sprintf("events=%d dumps=%d", len(m.Events()), len(m.Dumps()))
	if sup != nil {
		out["remedy"] = fmt.Sprintf("actions=%d quarantined=%d", len(sup.Actions()), len(sup.Quarantined()))
	}
	return out
}
