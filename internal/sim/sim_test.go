package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestOrderedExecution(t *testing.T) {
	k := NewKernel()
	var got []Time
	for _, d := range []Duration{5, 1, 3, 2, 4} {
		d := d
		k.After(d, func() { got = append(got, k.Now()) })
	}
	k.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Errorf("ran %d events, want 5", len(got))
	}
}

func TestSameTimeFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(100, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	k := NewKernel()
	k.After(10*Second, func() {
		if k.Now() != 10*Second {
			t.Errorf("clock = %v inside event, want 10s", k.Now())
		}
	})
	k.Run()
	if k.Now() != 10*Second {
		t.Errorf("final clock = %v, want 10s", k.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.After(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		k.At(1, func() {})
	})
	k.Run()
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	ran := false
	h := k.After(10, func() { ran = true })
	if !h.Cancel() {
		t.Error("first Cancel should report true")
	}
	if h.Cancel() {
		t.Error("second Cancel should report false")
	}
	k.Run()
	if ran {
		t.Error("cancelled event ran")
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			k.After(1, recurse)
		}
	}
	k.After(1, recurse)
	k.Run()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if k.Now() != 100 {
		t.Errorf("clock = %v, want 100", k.Now())
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	k.RunUntil(25)
	if len(fired) != 2 {
		t.Errorf("fired %v, want events at 10,20", fired)
	}
	if k.Now() != 25 {
		t.Errorf("clock = %v, want 25", k.Now())
	}
	k.Run()
	if len(fired) != 4 {
		t.Errorf("remaining events lost: %v", fired)
	}
}

func TestRunForAccumulates(t *testing.T) {
	k := NewKernel()
	k.RunFor(10 * Second)
	k.RunFor(5 * Second)
	if k.Now() != 15*Second {
		t.Errorf("clock = %v, want 15s", k.Now())
	}
}

func TestTicker(t *testing.T) {
	k := NewKernel()
	var ticks []Time
	tk := k.Every(10, func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) == 5 {
			// Stop from inside the callback.
			// (tk captured below; safe because Every returns first)
		}
	})
	k.RunUntil(55)
	tk.Stop()
	k.Run()
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5: %v", len(ticks), ticks)
	}
	for i, tick := range ticks {
		if tick != Time(10*(i+1)) {
			t.Errorf("tick %d at %v, want %v", i, tick, 10*(i+1))
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	k := NewKernel()
	count := 0
	var tk *Ticker
	tk = k.Every(1, func(Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	k.Run()
	if count != 3 {
		t.Errorf("ticker fired %d times after Stop at 3", count)
	}
}

func TestDeterminismProperty(t *testing.T) {
	// The same schedule produces the same execution order regardless of
	// insertion pattern within equal timestamps being preserved.
	f := func(delays []uint16) bool {
		run := func() []Time {
			k := NewKernel()
			var order []Time
			for _, d := range delays {
				d := Duration(d)
				k.After(d, func() { order = append(order, k.Now()) })
			}
			k.Run()
			return order
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEventsProcessedCount(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 7; i++ {
		k.After(Duration(i), func() {})
	}
	h := k.After(100, func() {})
	h.Cancel()
	k.Run()
	if k.EventsProcessed() != 7 {
		t.Errorf("EventsProcessed = %d, want 7", k.EventsProcessed())
	}
}

func TestTimeString(t *testing.T) {
	if got := Time(1500 * Millisecond).String(); got != "1.500000000s" {
		t.Errorf("String = %q", got)
	}
	if got := Time(2 * Second).Seconds(); got != 2 {
		t.Errorf("Seconds = %v", got)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		for j := 0; j < 100; j++ {
			k.After(Duration(j%10), func() {})
		}
		k.Run()
	}
}

func TestQueueHighWatermark(t *testing.T) {
	k := NewKernel()
	if k.QueueHighWatermark() != 0 {
		t.Fatalf("fresh kernel watermark = %d, want 0", k.QueueHighWatermark())
	}
	// The watermark samples at tick boundaries: the first event of each
	// distinct timestamp counts itself plus everything still queued.
	for i := 0; i < 5; i++ {
		k.After(Duration(i+1), func() {})
	}
	if got := k.QueueHighWatermark(); got != 0 {
		t.Errorf("watermark before any execution = %d, want 0", got)
	}
	k.Run()
	// The first tick (t=1) sees all 5 events queued: 4 remaining + itself.
	if got := k.QueueHighWatermark(); got != 5 {
		t.Errorf("watermark after drain = %d, want 5", got)
	}
	// A smaller burst leaves the watermark unchanged; a larger one
	// raises it.
	for i := 0; i < 3; i++ {
		k.After(Duration(i+1), func() {})
	}
	k.Run()
	if got := k.QueueHighWatermark(); got != 5 {
		t.Errorf("watermark after smaller burst = %d, want 5", got)
	}
	for i := 0; i < 7; i++ {
		k.After(Duration(i+1), func() {})
	}
	k.Run()
	if got := k.QueueHighWatermark(); got != 7 {
		t.Errorf("watermark after larger burst = %d, want 7", got)
	}
	// Events landing on an already-executing tick do not resample: two
	// events at one timestamp never push the watermark above the
	// tick-boundary view.
	k2 := NewKernel()
	k2.At(10, func() {})
	k2.At(10, func() {})
	k2.Run()
	if got := k2.QueueHighWatermark(); got != 2 {
		t.Errorf("same-tick watermark = %d, want 2", got)
	}
}

func TestMaxEventsPerTick(t *testing.T) {
	k := NewKernel()
	if k.MaxEventsPerTick() != 0 {
		t.Fatalf("fresh kernel max/tick = %d, want 0", k.MaxEventsPerTick())
	}
	// Three events at t=10, one at t=20, two at t=30.
	for i := 0; i < 3; i++ {
		k.At(10, func() {})
	}
	k.At(20, func() {})
	k.At(30, func() {})
	k.At(30, func() {})
	k.Run()
	if got := k.MaxEventsPerTick(); got != 3 {
		t.Errorf("max events per tick = %d, want 3", got)
	}
	// Events at t=0 on a fresh kernel are counted from the first event
	// (lastTick is initialized distinct from zero).
	k2 := NewKernel()
	k2.At(0, func() {})
	k2.At(0, func() {})
	k2.Run()
	if got := k2.MaxEventsPerTick(); got != 2 {
		t.Errorf("max events per tick at t=0 = %d, want 2", got)
	}
}
