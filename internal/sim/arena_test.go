package sim

import (
	"fmt"
	"testing"
)

// TestGoldenEventOrder pins the exact execution order of a mixed
// schedule — closures, arg-carrying events, a ticker, and cancellations
// — so any change to heap layout or arena recycling that perturbs the
// (time, seq) FIFO contract fails loudly.
func TestGoldenEventOrder(t *testing.T) {
	k := NewKernel()
	var log []string
	emit := func(s string) { log = append(log, fmt.Sprintf("%d:%s", k.Now(), s)) }
	emitArg := func(a any) { emit(a.(string)) }

	k.At(10, func() { emit("a") })
	k.AtArg(10, emitArg, "b")
	hc := k.At(10, func() { emit("c-cancelled") })
	k.At(10, func() { emit("d") })
	k.At(5, func() {
		emit("early")
		hc.Cancel()               // cancel a later same-run event
		k.AtArg(10, emitArg, "e") // lands after d (higher seq)
		k.At(7, func() { emit("mid") })
	})
	tick := k.Every(4, func(now Time) { emit("tick") })
	k.At(12, func() { tick.Stop(); emit("stop") })
	k.Run()

	want := []string{
		"4:tick",
		"5:early",
		"7:mid",
		"8:tick",
		"10:a", "10:b", "10:d", "10:e",
		// stop was scheduled during setup (lower seq than the ticker's
		// t=12 event, which was only scheduled at t=8), so it runs first
		// and cancels that final firing.
		"12:stop",
	}
	if len(log) != len(want) {
		t.Fatalf("got %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("event %d = %q, want %q\nfull: %v", i, log[i], want[i], log)
		}
	}
	if free, size := k.arenaFree(), k.arenaSize(); free != size {
		t.Errorf("arena leak: %d free of %d slots", free, size)
	}
}

// TestCancelSameTimestampKeepsFIFO is the regression test for the
// Schedule-during-Pop edge: cancelling an event from inside another
// event at the same timestamp must neither skew the FIFO order of the
// survivors nor leak the cancelled arena slot.
func TestCancelSameTimestampKeepsFIFO(t *testing.T) {
	k := NewKernel()
	var order []string
	var hC, hD Handle
	k.At(100, func() {
		order = append(order, "A")
		if !hC.Cancel() {
			t.Error("C should still be cancellable from inside A")
		}
		// Scheduling at the same timestamp from inside the tick must not
		// reuse C's queued slot or jump the FIFO.
		k.At(100, func() { order = append(order, "F") })
	})
	k.At(100, func() { order = append(order, "B") })
	hC = k.At(100, func() { order = append(order, "C") })
	hD = k.At(100, func() { order = append(order, "D") })
	k.At(100, func() { order = append(order, "E") })
	k.Run()

	want := "A B D E F"
	got := ""
	for i, s := range order {
		if i > 0 {
			got += " "
		}
		got += s
	}
	if got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
	if hD.Cancel() {
		t.Error("D already ran; Cancel must report false")
	}
	if free, size := k.arenaFree(), k.arenaSize(); free != size {
		t.Errorf("arena leak after cancelled-in-tick: %d free of %d slots", free, size)
	}
	if k.Pending() != 0 {
		t.Errorf("pending = %d after drain", k.Pending())
	}
}

// TestStaleHandleAfterSlotReuse: once a slot is recycled, an old Handle
// (same index, older generation) must not cancel the new occupant.
func TestStaleHandleAfterSlotReuse(t *testing.T) {
	k := NewKernel()
	ran1, ran2 := false, false
	h1 := k.After(1, func() { ran1 = true })
	k.Run()
	if !ran1 {
		t.Fatal("first event did not run")
	}
	// The arena has exactly one slot; this reuses it.
	h2 := k.After(1, func() { ran2 = true })
	if h1.Cancel() {
		t.Error("stale handle cancelled a recycled slot")
	}
	k.Run()
	if !ran2 {
		t.Error("second event was suppressed by a stale handle")
	}
	_ = h2
}

// TestArenaRecyclesUnderCancellation drains a schedule where a third of
// the events are cancelled (some before their tick, some from within
// same-timestamp events) and checks every slot comes back.
func TestArenaRecyclesUnderCancellation(t *testing.T) {
	k := NewKernel()
	const n = 3000
	handles := make([]Handle, n)
	ran := 0
	for i := 0; i < n; i++ {
		i := i
		handles[i] = k.At(Time(i%97), func() {
			ran++
			// Each running event cancels its +2 neighbour when that
			// neighbour shares its timestamp (97 and 2 are coprime, so
			// this only hits occasionally — mixing reaped and live).
			j := i + 2*97
			if j < n {
				handles[j].Cancel()
			}
		})
	}
	for i := 0; i < n; i += 3 {
		handles[i].Cancel()
	}
	k.Run()
	if ran == 0 || ran >= n {
		t.Fatalf("ran = %d, want strictly between 0 and %d", ran, n)
	}
	if free, size := k.arenaFree(), k.arenaSize(); free != size {
		t.Errorf("arena leak: %d free of %d slots", free, size)
	}
	if k.Pending() != 0 {
		t.Errorf("pending = %d", k.Pending())
	}
}

// TestRunUntilReapsCancelled: cancelled events at the heap top must not
// stall RunUntil or leak slots when the deadline lands between events.
func TestRunUntilReapsCancelled(t *testing.T) {
	k := NewKernel()
	h := k.At(10, func() { t.Error("cancelled event ran") })
	fired := false
	k.At(20, func() { fired = true })
	h.Cancel()
	k.RunUntil(15)
	if fired {
		t.Error("t=20 event ran before deadline 15")
	}
	if k.Now() != 15 {
		t.Errorf("clock = %v, want 15", k.Now())
	}
	k.Run()
	if !fired {
		t.Error("t=20 event lost")
	}
	if free, size := k.arenaFree(), k.arenaSize(); free != size {
		t.Errorf("arena leak: %d free of %d slots", free, size)
	}
}

// TestAtArgDelivery: AtArg passes the argument through untouched and
// interleaves with closure events in seq order.
func TestAtArgDelivery(t *testing.T) {
	k := NewKernel()
	var got []int
	add := func(a any) { got = append(got, a.(int)) }
	k.AtArg(5, add, 1)
	k.At(5, func() { got = append(got, 2) })
	k.AfterArg(5, add, 3)
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

func TestAfterArgNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative AfterArg should panic")
		}
	}()
	NewKernel().AfterArg(-1, func(any) {}, nil)
}

// --- micro-benchmarks (BENCH_kernel.json sources) ---

func benchNop(any) {}

// BenchmarkKernelSchedule measures the schedule+drain cycle in batches,
// the steady-state pattern of a simulation (arena and heap stay warm).
func BenchmarkKernelSchedule(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	const batch = 1024
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.At(k.Now()+Duration(i&255), fn)
		if i&(batch-1) == batch-1 {
			k.Run()
		}
	}
	k.Run()
}

// BenchmarkKernelRunDense is the headline hot-loop benchmark: bursts of
// events packed onto few timestamps (the per-frame capture pattern),
// scheduled through the arg-carrying fast path. Steady-state allocs/op
// must be ~0; the pre-arena kernel paid one *event plus one closure per
// schedule.
func BenchmarkKernelRunDense(b *testing.B) {
	k := NewKernel()
	const events = 512
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := k.Now()
		for j := 0; j < events; j++ {
			k.AtArg(base+Duration(j&15), benchNop, nil)
		}
		k.Run()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*events), "ns/event")
}

// BenchmarkKernelCancel measures schedule+cancel+reap round trips.
func BenchmarkKernelCancel(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	const batch = 1024
	handles := make([]Handle, 0, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		handles = append(handles, k.At(k.Now()+Duration(1+i&63), fn))
		if len(handles) == batch {
			for _, h := range handles {
				h.Cancel()
			}
			handles = handles[:0]
			k.Run()
		}
	}
	k.Run()
}
