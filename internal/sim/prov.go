// Causal event provenance. When enabled, the kernel reports every
// schedule call as a ProvRecord: the new event's serial sequence number,
// the sequence number of the event whose handler scheduled it (its
// causal parent), its timestamp, a code pointer identifying the
// callback, and an optional component tag. The records, emitted in
// strictly increasing sequence order, form the run's causal DAG — the
// input to internal/prof's critical-path and blame analysis.
//
// The hook is off by default and costs one nil check per schedule call
// plus two word stores per Step when disabled, so the kernel's
// zero-allocation steady state is preserved. Parent capture needs no
// per-event storage in the arena: the kernel knows which event is
// executing, so the parent is a single field updated around the
// callback.
package sim

import "reflect"

// NoProvParent is the Parent value of a root record: an event scheduled
// from outside any event handler (setup code, or the driver between
// kernel steps).
const NoProvParent = ^uint64(0)

// ProvRecord describes one schedule call in the causal event DAG.
type ProvRecord struct {
	// Seq is the scheduled event's serial sequence number — unique and
	// strictly increasing across a run.
	Seq uint64
	// Parent is the sequence number of the event whose handler made the
	// schedule call, or NoProvParent for root events.
	Parent uint64
	// At is the scheduled (firing) timestamp.
	At Time
	// PC is the callback's code pointer (resolve to a name with
	// runtime.FuncForPC). Stable within a process, not across processes;
	// persisted traces intern names, never raw PCs.
	PC uintptr
	// Tag is the provenance domain the schedule call was made under
	// (e.g. a site id assigned by the campaign layer); 0 means untagged.
	Tag int32
}

// SetProvenance installs (or, with nil, removes) the provenance hook.
// fn is called synchronously on the scheduling goroutine for every
// subsequent schedule call; it must not schedule events itself.
func (k *Kernel) SetProvenance(fn func(ProvRecord)) { k.prov = fn }

// Provenance returns the installed provenance hook, or nil. A parallel
// lane executor uses this to emit records for schedule calls it merges
// at a window barrier (which bypass Kernel.schedule).
func (k *Kernel) Provenance() func(ProvRecord) { return k.prov }

// SetProvTag sets the provenance domain tag applied to subsequent
// schedule calls. Wrappers (see prof.TagScheduler) set it around each
// delegated call so events are attributed to the component that
// scheduled them; 0 restores the untagged state.
func (k *Kernel) SetProvTag(tag int32) { k.provTag = tag }

// CallbackPC returns the code pointer identifying an event callback:
// the argument-carrying callback when set, else the plain one. Method
// values and closures created from the same code share a PC, which is
// exactly the granularity blame attribution wants.
func CallbackPC(fn func(), argFn func(any)) uintptr {
	if argFn != nil {
		return reflect.ValueOf(argFn).Pointer()
	}
	if fn != nil {
		return reflect.ValueOf(fn).Pointer()
	}
	return 0
}
