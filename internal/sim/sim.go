// Package sim implements a deterministic discrete-event simulation kernel.
// Every time-dependent substrate in this repository (switches, hosts,
// capture pipelines, the testbed federation) advances on a shared virtual
// clock driven by an event queue. Wall-clock time never enters a
// simulation, which keeps experiment output reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
	Day                  = 24 * Hour
	Week                 = 7 * Day
)

// String renders the time as seconds with nanosecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%d.%09ds", int64(t)/int64(Second), int64(t)%int64(Second))
}

// Seconds converts to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-break so same-time events run FIFO (determinism)
	fn   func()
	done bool // cancelled
	idx  int  // heap index
}

// eventQueue is a min-heap on (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Kernel is the simulation engine. It is not safe for concurrent use; a
// simulation runs single-threaded by design.
type Kernel struct {
	now    Time
	queue  eventQueue
	seq    uint64
	nEvent uint64

	// Introspection counters (metrics sources for the obs layer).
	queueHighWater int
	lastTick       Time
	tickEvents     uint64
	maxTickEvents  uint64
}

// NewKernel returns a kernel at time zero with an empty queue.
func NewKernel() *Kernel {
	return &Kernel{lastTick: -1}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// EventsProcessed reports how many events have been executed.
func (k *Kernel) EventsProcessed() uint64 { return k.nEvent }

// Pending reports how many events remain scheduled (including cancelled
// events not yet reaped).
func (k *Kernel) Pending() int { return len(k.queue) }

// QueueHighWatermark reports the maximum queue length ever observed —
// a proxy for how bursty the schedule is and how much heap the kernel
// needs.
func (k *Kernel) QueueHighWatermark() int { return k.queueHighWater }

// MaxEventsPerTick reports the largest number of events executed at a
// single virtual timestamp.
func (k *Kernel) MaxEventsPerTick() uint64 { return k.maxTickEvents }

// Handle identifies a scheduled event and allows cancellation.
type Handle struct{ e *event }

// Cancel prevents the event from running. Cancelling an already-run or
// already-cancelled event is a no-op. It reports whether the event was
// still pending.
func (h Handle) Cancel() bool {
	if h.e == nil || h.e.done {
		return false
	}
	h.e.done = true
	h.e.fn = nil
	return true
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// that is always a logic error in a discrete-event model.
func (k *Kernel) At(t Time, fn func()) Handle {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, k.now))
	}
	e := &event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, e)
	if len(k.queue) > k.queueHighWater {
		k.queueHighWater = len(k.queue)
	}
	return Handle{e}
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Duration, fn func()) Handle {
	if d < 0 {
		panic("sim: negative delay")
	}
	return k.At(k.now+d, fn)
}

// Every schedules fn at now+d, then every d thereafter, until the returned
// Ticker is stopped. fn receives the firing time.
func (k *Kernel) Every(d Duration, fn func(Time)) *Ticker {
	if d <= 0 {
		panic("sim: non-positive period")
	}
	t := &Ticker{k: k, period: d, fn: fn}
	t.schedule()
	return t
}

// Ticker is a repeating event. Stop cancels future firings.
type Ticker struct {
	k       *Kernel
	period  Duration
	fn      func(Time)
	h       Handle
	stopped bool
}

func (t *Ticker) schedule() {
	t.h = t.k.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn(t.k.now)
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels the ticker.
func (t *Ticker) Stop() {
	t.stopped = true
	t.h.Cancel()
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*event)
		if e.done {
			continue // reap cancelled
		}
		k.now = e.at
		e.done = true
		fn := e.fn
		e.fn = nil
		k.nEvent++
		if e.at != k.lastTick {
			k.lastTick = e.at
			k.tickEvents = 0
		}
		k.tickEvents++
		if k.tickEvents > k.maxTickEvents {
			k.maxTickEvents = k.tickEvents
		}
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (k *Kernel) RunUntil(deadline Time) {
	for {
		e := k.peek()
		if e == nil || e.at > deadline {
			break
		}
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// RunFor advances the simulation by d.
func (k *Kernel) RunFor(d Duration) { k.RunUntil(k.now + d) }

func (k *Kernel) peek() *event {
	for len(k.queue) > 0 {
		e := k.queue[0]
		if !e.done {
			return e
		}
		heap.Pop(&k.queue)
	}
	return nil
}
