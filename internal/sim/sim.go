// Package sim implements a deterministic discrete-event simulation kernel.
// Every time-dependent substrate in this repository (switches, hosts,
// capture pipelines, the testbed federation) advances on a shared virtual
// clock driven by an event queue. Wall-clock time never enters a
// simulation, which keeps experiment output reproducible.
//
// The kernel is allocation-free on its steady-state hot path: scheduled
// events live in a pooled arena of slots recycled through a free list,
// and the priority queue is a 4-ary min-heap of small value entries
// (timestamp, sequence, slot index) rather than a heap of pointers. The
// argument-carrying schedule variants (AtArg / AfterArg) let callers on
// per-frame paths schedule without allocating a capturing closure, so a
// dense simulation runs with zero allocations per event once the arena
// and heap have grown to the schedule's high-water mark.
//
// Determinism contract: events fire in (time, sequence) order, where the
// sequence number increments on every schedule call. Two events at the
// same virtual time therefore run in the order they were scheduled
// (FIFO), regardless of arena slot reuse or heap layout, and a run is a
// pure function of the schedule — never of memory addresses or map
// iteration.
package sim

import "fmt"

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
	Day                  = 24 * Hour
	Week                 = 7 * Day
)

// String renders the time as seconds with nanosecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%d.%09ds", int64(t)/int64(Second), int64(t)%int64(Second))
}

// Seconds converts to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Scheduler is the scheduling surface shared by the serial Kernel and a
// parallel lane executor (internal/lanes). Components hold a Scheduler
// rather than a *Kernel so the same substrate code runs unchanged in a
// serial world (Scheduler == the Kernel) and inside a dataplane lane
// (Scheduler == a lanes.Lane that tags and stages events). During lane
// execution, Now reports the executing event's timestamp — exactly what
// Kernel.Now reports while an event runs serially.
type Scheduler interface {
	Now() Time
	At(t Time, fn func()) Handle
	AtArg(t Time, fn func(any), arg any) Handle
	After(d Duration, fn func()) Handle
	AfterArg(d Duration, fn func(any), arg any) Handle
	Every(d Duration, fn func(Time)) *Ticker
}

// GlobalLane is the lane tag of ordinary (non-laned) events. Global
// events synchronize the whole world: a parallel executor runs them
// serially, with every lane quiescent.
const GlobalLane int32 = 0

// Slot lifecycle states.
const (
	slotFree uint8 = iota
	slotPending
	slotCancelled // cancelled but still referenced by a heap entry
)

// eventSlot is one arena cell. The ordering key (at, seq) lives in the
// heap entry, not here; the slot only carries the callback and its
// lifecycle state. Exactly one of fn and argFn is set.
type eventSlot struct {
	fn    func()
	argFn func(any)
	arg   any
	gen   uint32 // bumped on release so stale Handles cannot touch a reused slot
	state uint8
	lane  int32 // GlobalLane, or the dataplane lane the event belongs to
}

// heapEntry is one priority-queue element. Keeping the comparison key
// inline (instead of chasing a pointer per comparison) keeps sift
// operations in cache.
type heapEntry struct {
	at  Time
	seq uint64
	idx int32
}

func (a heapEntry) less(b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Kernel is the simulation engine. It is not safe for concurrent use; a
// simulation runs single-threaded by design. Run one Kernel per
// goroutine for parallel experiments.
type Kernel struct {
	now    Time
	seq    uint64
	nEvent uint64

	slots []eventSlot
	free  []int32 // free-list of arena slot indices
	heap  []heapEntry

	// Introspection counters (metrics sources for the obs layer).
	queueHighWater int
	lastTick       Time
	tickEvents     uint64
	maxTickEvents  uint64

	// Causal provenance (see prov.go). prov == nil means off.
	prov       func(ProvRecord)
	provParent uint64
	provTag    int32
}

// NewKernel returns a kernel at time zero with an empty queue.
func NewKernel() *Kernel {
	return &Kernel{lastTick: -1, provParent: NoProvParent}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// EventsProcessed reports how many events have been executed.
func (k *Kernel) EventsProcessed() uint64 { return k.nEvent }

// Pending reports how many events remain scheduled (including cancelled
// events not yet reaped).
func (k *Kernel) Pending() int { return len(k.heap) }

// QueueHighWatermark reports the maximum pending-event count observed,
// sampled at the first event of each distinct timestamp — a proxy for
// how bursty the schedule is and how much heap the kernel needs.
// Tick-boundary sampling (rather than sampling on every push) makes the
// watermark exactly reconstructible when a window of events runs on
// parallel lanes (ApplyWindow), so serial and laned runs report the
// same value.
func (k *Kernel) QueueHighWatermark() int { return k.queueHighWater }

// MaxEventsPerTick reports the largest number of events executed at a
// single virtual timestamp.
func (k *Kernel) MaxEventsPerTick() uint64 { return k.maxTickEvents }

// Seq returns the next schedule sequence number. Together with Now it
// is the kernel's progress marker: two deterministic runs that agree on
// (Now, Seq, EventsProcessed) have executed the same schedule prefix.
func (k *Kernel) Seq() uint64 { return k.seq }

// Checkpoint is the kernel's restorable progress marker: the virtual
// clock, the schedule sequence counter, and the number of events
// executed. The event queue itself holds closures and cannot be
// serialized; checkpoint/restore of a simulation therefore replays the
// deterministic schedule from zero and uses Checkpoint equality to
// verify that the replay reached exactly the checkpointed state (see
// internal/journal).
type Checkpoint struct {
	Now    Time   `json:"now_ns"`
	Seq    uint64 `json:"seq"`
	Events uint64 `json:"events"`
}

// Checkpoint captures the kernel's current progress marker.
func (k *Kernel) Checkpoint() Checkpoint {
	return Checkpoint{Now: k.now, Seq: k.seq, Events: k.nEvent}
}

// arenaSize reports the total number of arena slots ever grown (for
// tests and capacity introspection).
func (k *Kernel) arenaSize() int { return len(k.slots) }

// arenaFree reports how many arena slots sit on the free list (for leak
// tests: after a full drain, arenaFree == arenaSize).
func (k *Kernel) arenaFree() int { return len(k.free) }

// Handle identifies a scheduled event and allows cancellation. The zero
// Handle is valid and refers to no event.
type Handle struct {
	k   *Kernel
	idx int32
	gen uint32
}

// Cancel prevents the event from running. Cancelling an already-run or
// already-cancelled event is a no-op. It reports whether the event was
// still pending. The arena slot is reclaimed lazily when the queue
// reaches the cancelled entry, so cancellation never perturbs the
// ordering of other same-timestamp events.
func (h Handle) Cancel() bool {
	if h.k == nil {
		return false
	}
	s := &h.k.slots[h.idx]
	if s.gen != h.gen || s.state != slotPending {
		return false
	}
	s.state = slotCancelled
	// Drop callback references now so cancelled-but-unreaped events do
	// not pin memory; the slot itself is recycled on reap.
	s.fn, s.argFn, s.arg = nil, nil, nil
	return true
}

// alloc takes a slot from the free list, growing the arena if empty.
func (k *Kernel) alloc() int32 {
	if n := len(k.free); n > 0 {
		idx := k.free[n-1]
		k.free = k.free[:n-1]
		return idx
	}
	k.slots = append(k.slots, eventSlot{})
	return int32(len(k.slots) - 1)
}

// release returns a slot to the free list and invalidates outstanding
// handles to it.
func (k *Kernel) release(idx int32) {
	s := &k.slots[idx]
	s.fn, s.argFn, s.arg = nil, nil, nil
	s.state = slotFree
	s.gen++
	k.free = append(k.free, idx)
}

// schedule is the shared core of At/AtArg/LaneAt/LaneAtArg.
func (k *Kernel) schedule(lane int32, t Time, fn func(), argFn func(any), arg any) Handle {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, k.now))
	}
	idx := k.alloc()
	s := &k.slots[idx]
	s.fn, s.argFn, s.arg = fn, argFn, arg
	s.state = slotPending
	s.lane = lane
	k.heapPush(heapEntry{at: t, seq: k.seq, idx: idx})
	if k.prov != nil {
		k.prov(ProvRecord{Seq: k.seq, Parent: k.provParent, At: t, PC: CallbackPC(fn, argFn), Tag: k.provTag})
	}
	k.seq++
	return Handle{k: k, idx: idx, gen: s.gen}
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// that is always a logic error in a discrete-event model.
func (k *Kernel) At(t Time, fn func()) Handle {
	return k.schedule(GlobalLane, t, fn, nil, nil)
}

// AtArg schedules fn(arg) at absolute time t. It is the zero-allocation
// variant of At for hot paths: because the argument rides in the event
// slot, the callback can be a plain function or a pre-bound method value
// and needs no capturing closure. Pointer-shaped args (e.g. *T) do not
// allocate when stored.
func (k *Kernel) AtArg(t Time, fn func(any), arg any) Handle {
	return k.schedule(GlobalLane, t, nil, fn, arg)
}

// LaneAt schedules fn at time t tagged with a dataplane lane. Events on
// the same lane share state and run serially with respect to each
// other; a parallel executor (internal/lanes) may run different lanes'
// events concurrently within a conservative-lookahead window.
func (k *Kernel) LaneAt(lane int32, t Time, fn func()) Handle {
	return k.schedule(lane, t, fn, nil, nil)
}

// LaneAtArg is the zero-closure variant of LaneAt (see AtArg).
func (k *Kernel) LaneAtArg(lane int32, t Time, fn func(any), arg any) Handle {
	return k.schedule(lane, t, nil, fn, arg)
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Duration, fn func()) Handle {
	if d < 0 {
		panic("sim: negative delay")
	}
	return k.At(k.now+d, fn)
}

// AfterArg schedules fn(arg) d nanoseconds from now (see AtArg).
func (k *Kernel) AfterArg(d Duration, fn func(any), arg any) Handle {
	if d < 0 {
		panic("sim: negative delay")
	}
	return k.AtArg(k.now+d, fn, arg)
}

// Every schedules fn at now+d, then every d thereafter, until the returned
// Ticker is stopped. fn receives the firing time.
func (k *Kernel) Every(d Duration, fn func(Time)) *Ticker {
	return NewTicker(k, d, fn)
}

// NewTicker builds and starts a repeating event on any Scheduler — the
// shared implementation behind Kernel.Every and a lane's Every.
func NewTicker(s Scheduler, d Duration, fn func(Time)) *Ticker {
	if d <= 0 {
		panic("sim: non-positive period")
	}
	t := &Ticker{s: s, period: d, fn: fn}
	t.schedule()
	return t
}

// Ticker is a repeating event. Stop cancels future firings.
type Ticker struct {
	s       Scheduler
	period  Duration
	fn      func(Time)
	h       Handle
	stopped bool
}

// tickerFire re-dispatches through the ticker so each firing schedules
// the next without a fresh closure (one *Ticker serves the whole
// lifetime).
func tickerFire(a any) { a.(*Ticker).fire() }

func (t *Ticker) schedule() {
	t.h = t.s.AtArg(t.s.Now()+t.period, tickerFire, t)
}

func (t *Ticker) fire() {
	if t.stopped {
		return
	}
	t.fn(t.s.Now())
	if !t.stopped {
		t.schedule()
	}
}

// Stop cancels the ticker.
func (t *Ticker) Stop() {
	t.stopped = true
	t.h.Cancel()
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (k *Kernel) Step() bool {
	for len(k.heap) > 0 {
		e := k.heapPop()
		s := &k.slots[e.idx]
		if s.state == slotCancelled {
			k.release(e.idx) // reap
			continue
		}
		k.now = e.at
		fn, argFn, arg := s.fn, s.argFn, s.arg
		// Release before running: the callback may schedule new events
		// and immediately reuse this slot, and an in-flight event must
		// no longer be cancellable (gen bump invalidates its Handle).
		k.release(e.idx)
		k.nEvent++
		if e.at != k.lastTick {
			// Tick boundary: sample the pending-event count (the popped
			// event still counts — it has not finished running).
			if p := len(k.heap) + 1; p > k.queueHighWater {
				k.queueHighWater = p
			}
			k.lastTick = e.at
			k.tickEvents = 0
		}
		k.tickEvents++
		if k.tickEvents > k.maxTickEvents {
			k.maxTickEvents = k.tickEvents
		}
		// Mark the running event as the causal parent of anything its
		// handler schedules (two plain stores; provenance capture itself
		// is gated on the hook inside schedule).
		k.provParent = e.seq
		if argFn != nil {
			argFn(arg)
		} else {
			fn()
		}
		k.provParent = NoProvParent
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (k *Kernel) RunUntil(deadline Time) {
	for {
		at, ok := k.peek()
		if !ok || at > deadline {
			break
		}
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// RunFor advances the simulation by d.
func (k *Kernel) RunFor(d Duration) { k.RunUntil(k.now + d) }

// peek reports the timestamp of the next live event, reaping cancelled
// entries it skips over.
func (k *Kernel) peek() (Time, bool) {
	for len(k.heap) > 0 {
		e := k.heap[0]
		if k.slots[e.idx].state != slotCancelled {
			return e.at, true
		}
		k.heapPop()
		k.release(e.idx)
	}
	return 0, false
}

// --- Parallel lane windows ---
//
// The kernel stays single-threaded, but internal/lanes can pop a
// conservative-lookahead window of lane-tagged events (PopLaneWindow),
// execute each lane's subsequence on its own goroutine, and fold the
// results back at a barrier (FlushLane + ApplyWindow). The contract that
// keeps a laned run byte-identical to a serial one:
//
//   - PopLaneWindow pops the maximal prefix of the heap, in exact serial
//     (time, seq) order, that contains only lane events below the
//     lookahead horizon. The prefix property means every popped event
//     would have run next in a serial kernel too.
//   - Lane events may only touch their own lane's state and only
//     schedule onto their own lane (or across lanes through a
//     timestamped channel whose latency is at least the lookahead).
//   - The executor reconstructs the serial order of every schedule call
//     made inside the window and replays it through FlushLane with the
//     exact sequence numbers a serial kernel would have assigned, then
//     ApplyWindow restores the kernel's counters (clock, seq, event and
//     per-tick counts, queue high-watermark) to the serial values.

// NextLane reports the lane tag and timestamp of the next live event,
// reaping cancelled heads like peek. ok is false when the queue is
// empty.
func (k *Kernel) NextLane() (lane int32, at Time, ok bool) {
	for len(k.heap) > 0 {
		e := k.heap[0]
		s := &k.slots[e.idx]
		if s.state != slotCancelled {
			return s.lane, e.at, true
		}
		k.heapPop()
		k.release(e.idx)
	}
	return 0, 0, false
}

// LaneEvent is one live event popped by PopLaneWindow, carrying its
// serial ordering key so a lane executor can replay the kernel's exact
// (time, seq) order within each lane.
type LaneEvent struct {
	At   Time
	Seq  uint64
	Lane int32

	fn    func()
	argFn func(any)
	arg   any
}

// Call runs the event's callback.
func (e *LaneEvent) Call() {
	if e.argFn != nil {
		e.argFn(e.arg)
	} else {
		e.fn()
	}
}

// ReapMark records one cancelled entry reaped during window formation,
// identified by its heap key. The executor uses the marks to
// reconstruct, per tick, how many cancelled entries a serial kernel
// would have reaped before sampling the queue length.
type ReapMark struct {
	At  Time
	Seq uint64
}

// Window describes one conservative-lookahead batch of lane events.
type Window struct {
	// Start is the first popped event's timestamp; Horizon is the
	// lookahead bound Start+lookahead. Popping stops at the horizon, at
	// the first global event, or at MaxN events.
	Start, Horizon Time
	// ExecHorizon caps in-window execution: an event a lane schedules
	// onto itself below this bound runs inside the window (it cannot be
	// affected by anything outside the lane); at or beyond it, the event
	// is staged and flushed to the kernel heap at the barrier. It is
	// min(Horizon, timestamp of the next event left in the heap).
	ExecHorizon Time
	// L0 is the heap length at window formation, before any pops.
	L0 int
	// SeqBase is the kernel's sequence counter at window formation.
	SeqBase uint64
	// N is the number of live lane events popped.
	N int
}

// PopLaneWindow pops the maximal serial-order prefix of live lane
// events, stopping at the first global event, at the lookahead horizon
// (first event's time + lookahead), or after maxN live events. Popped
// events are appended to evOut and reaped cancellations to reapOut
// (both may be reused buffers); the returned slices share their
// backing arrays. The caller must only invoke this when NextLane
// reports a non-global head.
func (k *Kernel) PopLaneWindow(lookahead Duration, maxN int, evOut []LaneEvent, reapOut []ReapMark) (Window, []LaneEvent, []ReapMark) {
	w := Window{L0: len(k.heap), SeqBase: k.seq}
	started := false
	for len(k.heap) > 0 && w.N < maxN {
		e := k.heap[0]
		s := &k.slots[e.idx]
		if s.state == slotCancelled {
			k.heapPop()
			k.release(e.idx)
			reapOut = append(reapOut, ReapMark{At: e.at, Seq: e.seq})
			continue
		}
		if !started {
			if s.lane == GlobalLane {
				break
			}
			w.Start = e.at
			w.Horizon = e.at + lookahead
			started = true
		} else if s.lane == GlobalLane || e.at >= w.Horizon {
			break
		}
		k.heapPop()
		evOut = append(evOut, LaneEvent{
			At: e.at, Seq: e.seq, Lane: s.lane,
			fn: s.fn, argFn: s.argFn, arg: s.arg,
		})
		k.release(e.idx)
		w.N++
	}
	w.ExecHorizon = w.Horizon
	if at, ok := k.peek(); ok && at < w.ExecHorizon {
		w.ExecHorizon = at
	}
	return w, evOut, reapOut
}

// TickRun is one executed timestamp's merged summary inside a window.
type TickRun struct {
	At Time
	// FirstSeq is the sequence number of the serially-first event
	// executed at At (used to order reaped cancellations against it).
	FirstSeq uint64
	// Exec counts events executed at At across all lanes; Push counts
	// schedule calls made while executing them.
	Exec, Push uint64
	// ReapBefore counts cancelled entries that a serial kernel would
	// have reaped before At's first event (cumulative from window
	// start).
	ReapBefore int
}

// FlushLane schedules an event with an explicit, already-assigned
// sequence number — the barrier-flush path for events staged on lanes
// during a parallel window. The executor hands seq values in the exact
// order a serial kernel would have assigned them and advances the
// kernel's counter afterwards via ApplyWindow's seqNext.
func (k *Kernel) FlushLane(lane int32, t Time, seq uint64, fn func(), argFn func(any), arg any) Handle {
	if t < k.now {
		panic(fmt.Sprintf("sim: flushing at %v before now %v", t, k.now))
	}
	idx := k.alloc()
	s := &k.slots[idx]
	s.fn, s.argFn, s.arg = fn, argFn, arg
	s.state = slotPending
	s.lane = lane
	k.heapPush(heapEntry{at: t, seq: seq, idx: idx})
	return Handle{k: k, idx: idx, gen: s.gen}
}

// ApplyWindow folds a completed window back into the kernel: the clock
// advances to the last executed tick, event and per-tick counters
// accumulate, the queue high-watermark replays its tick-boundary
// samples from the window's push/exec/reap trajectory, and the
// sequence counter jumps to seqNext (SeqBase plus every schedule call
// made inside the window). ticks must be merged across lanes and
// sorted by timestamp.
func (k *Kernel) ApplyWindow(w Window, ticks []TickRun, seqNext uint64) {
	var pushed, execd uint64
	for i := range ticks {
		tr := &ticks[i]
		if tr.At != k.lastTick {
			// The serial kernel's tick-boundary sample: everything that
			// was in the heap at window formation, plus pushes, minus
			// executed events and reaped cancellations so far.
			if p := w.L0 + int(pushed) - int(execd) - tr.ReapBefore; p > k.queueHighWater {
				k.queueHighWater = p
			}
			k.lastTick = tr.At
			k.tickEvents = 0
		}
		k.tickEvents += tr.Exec
		if k.tickEvents > k.maxTickEvents {
			k.maxTickEvents = k.tickEvents
		}
		k.nEvent += tr.Exec
		k.now = tr.At
		pushed += tr.Push
		execd += tr.Exec
	}
	if seqNext > k.seq {
		k.seq = seqNext
	}
}

// --- 4-ary min-heap on (at, seq) ---
//
// A 4-ary layout halves the tree depth of a binary heap, trading a few
// extra comparisons per level for far fewer cache lines touched on
// sift-down — the dominant operation in a drain-heavy event loop.

const heapArity = 4

func (k *Kernel) heapPush(e heapEntry) {
	k.heap = append(k.heap, e)
	k.siftUp(len(k.heap) - 1)
}

func (k *Kernel) heapPop() heapEntry {
	h := k.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = heapEntry{}
	k.heap = h[:n]
	if n > 1 {
		k.siftDown(0)
	}
	return top
}

func (k *Kernel) siftUp(i int) {
	h := k.heap
	e := h[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if !e.less(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
}

func (k *Kernel) siftDown(i int) {
	h := k.heap
	n := len(h)
	e := h[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		last := first + heapArity
		if last > n {
			last = n
		}
		min := first
		for c := first + 1; c < last; c++ {
			if h[c].less(h[min]) {
				min = c
			}
		}
		if !h[min].less(e) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = e
}
