// Package sim implements a deterministic discrete-event simulation kernel.
// Every time-dependent substrate in this repository (switches, hosts,
// capture pipelines, the testbed federation) advances on a shared virtual
// clock driven by an event queue. Wall-clock time never enters a
// simulation, which keeps experiment output reproducible.
//
// The kernel is allocation-free on its steady-state hot path: scheduled
// events live in a pooled arena of slots recycled through a free list,
// and the priority queue is a 4-ary min-heap of small value entries
// (timestamp, sequence, slot index) rather than a heap of pointers. The
// argument-carrying schedule variants (AtArg / AfterArg) let callers on
// per-frame paths schedule without allocating a capturing closure, so a
// dense simulation runs with zero allocations per event once the arena
// and heap have grown to the schedule's high-water mark.
//
// Determinism contract: events fire in (time, sequence) order, where the
// sequence number increments on every schedule call. Two events at the
// same virtual time therefore run in the order they were scheduled
// (FIFO), regardless of arena slot reuse or heap layout, and a run is a
// pure function of the schedule — never of memory addresses or map
// iteration.
package sim

import "fmt"

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
	Day                  = 24 * Hour
	Week                 = 7 * Day
)

// String renders the time as seconds with nanosecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%d.%09ds", int64(t)/int64(Second), int64(t)%int64(Second))
}

// Seconds converts to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Slot lifecycle states.
const (
	slotFree uint8 = iota
	slotPending
	slotCancelled // cancelled but still referenced by a heap entry
)

// eventSlot is one arena cell. The ordering key (at, seq) lives in the
// heap entry, not here; the slot only carries the callback and its
// lifecycle state. Exactly one of fn and argFn is set.
type eventSlot struct {
	fn    func()
	argFn func(any)
	arg   any
	gen   uint32 // bumped on release so stale Handles cannot touch a reused slot
	state uint8
}

// heapEntry is one priority-queue element. Keeping the comparison key
// inline (instead of chasing a pointer per comparison) keeps sift
// operations in cache.
type heapEntry struct {
	at  Time
	seq uint64
	idx int32
}

func (a heapEntry) less(b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Kernel is the simulation engine. It is not safe for concurrent use; a
// simulation runs single-threaded by design. Run one Kernel per
// goroutine for parallel experiments.
type Kernel struct {
	now    Time
	seq    uint64
	nEvent uint64

	slots []eventSlot
	free  []int32 // free-list of arena slot indices
	heap  []heapEntry

	// Introspection counters (metrics sources for the obs layer).
	queueHighWater int
	lastTick       Time
	tickEvents     uint64
	maxTickEvents  uint64
}

// NewKernel returns a kernel at time zero with an empty queue.
func NewKernel() *Kernel {
	return &Kernel{lastTick: -1}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// EventsProcessed reports how many events have been executed.
func (k *Kernel) EventsProcessed() uint64 { return k.nEvent }

// Pending reports how many events remain scheduled (including cancelled
// events not yet reaped).
func (k *Kernel) Pending() int { return len(k.heap) }

// QueueHighWatermark reports the maximum queue length ever observed —
// a proxy for how bursty the schedule is and how much heap the kernel
// needs.
func (k *Kernel) QueueHighWatermark() int { return k.queueHighWater }

// MaxEventsPerTick reports the largest number of events executed at a
// single virtual timestamp.
func (k *Kernel) MaxEventsPerTick() uint64 { return k.maxTickEvents }

// Seq returns the next schedule sequence number. Together with Now it
// is the kernel's progress marker: two deterministic runs that agree on
// (Now, Seq, EventsProcessed) have executed the same schedule prefix.
func (k *Kernel) Seq() uint64 { return k.seq }

// Checkpoint is the kernel's restorable progress marker: the virtual
// clock, the schedule sequence counter, and the number of events
// executed. The event queue itself holds closures and cannot be
// serialized; checkpoint/restore of a simulation therefore replays the
// deterministic schedule from zero and uses Checkpoint equality to
// verify that the replay reached exactly the checkpointed state (see
// internal/journal).
type Checkpoint struct {
	Now    Time   `json:"now_ns"`
	Seq    uint64 `json:"seq"`
	Events uint64 `json:"events"`
}

// Checkpoint captures the kernel's current progress marker.
func (k *Kernel) Checkpoint() Checkpoint {
	return Checkpoint{Now: k.now, Seq: k.seq, Events: k.nEvent}
}

// arenaSize reports the total number of arena slots ever grown (for
// tests and capacity introspection).
func (k *Kernel) arenaSize() int { return len(k.slots) }

// arenaFree reports how many arena slots sit on the free list (for leak
// tests: after a full drain, arenaFree == arenaSize).
func (k *Kernel) arenaFree() int { return len(k.free) }

// Handle identifies a scheduled event and allows cancellation. The zero
// Handle is valid and refers to no event.
type Handle struct {
	k   *Kernel
	idx int32
	gen uint32
}

// Cancel prevents the event from running. Cancelling an already-run or
// already-cancelled event is a no-op. It reports whether the event was
// still pending. The arena slot is reclaimed lazily when the queue
// reaches the cancelled entry, so cancellation never perturbs the
// ordering of other same-timestamp events.
func (h Handle) Cancel() bool {
	if h.k == nil {
		return false
	}
	s := &h.k.slots[h.idx]
	if s.gen != h.gen || s.state != slotPending {
		return false
	}
	s.state = slotCancelled
	// Drop callback references now so cancelled-but-unreaped events do
	// not pin memory; the slot itself is recycled on reap.
	s.fn, s.argFn, s.arg = nil, nil, nil
	return true
}

// alloc takes a slot from the free list, growing the arena if empty.
func (k *Kernel) alloc() int32 {
	if n := len(k.free); n > 0 {
		idx := k.free[n-1]
		k.free = k.free[:n-1]
		return idx
	}
	k.slots = append(k.slots, eventSlot{})
	return int32(len(k.slots) - 1)
}

// release returns a slot to the free list and invalidates outstanding
// handles to it.
func (k *Kernel) release(idx int32) {
	s := &k.slots[idx]
	s.fn, s.argFn, s.arg = nil, nil, nil
	s.state = slotFree
	s.gen++
	k.free = append(k.free, idx)
}

// schedule is the shared core of At/AtArg.
func (k *Kernel) schedule(t Time, fn func(), argFn func(any), arg any) Handle {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, k.now))
	}
	idx := k.alloc()
	s := &k.slots[idx]
	s.fn, s.argFn, s.arg = fn, argFn, arg
	s.state = slotPending
	k.heapPush(heapEntry{at: t, seq: k.seq, idx: idx})
	k.seq++
	if len(k.heap) > k.queueHighWater {
		k.queueHighWater = len(k.heap)
	}
	return Handle{k: k, idx: idx, gen: s.gen}
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// that is always a logic error in a discrete-event model.
func (k *Kernel) At(t Time, fn func()) Handle {
	return k.schedule(t, fn, nil, nil)
}

// AtArg schedules fn(arg) at absolute time t. It is the zero-allocation
// variant of At for hot paths: because the argument rides in the event
// slot, the callback can be a plain function or a pre-bound method value
// and needs no capturing closure. Pointer-shaped args (e.g. *T) do not
// allocate when stored.
func (k *Kernel) AtArg(t Time, fn func(any), arg any) Handle {
	return k.schedule(t, nil, fn, arg)
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Duration, fn func()) Handle {
	if d < 0 {
		panic("sim: negative delay")
	}
	return k.At(k.now+d, fn)
}

// AfterArg schedules fn(arg) d nanoseconds from now (see AtArg).
func (k *Kernel) AfterArg(d Duration, fn func(any), arg any) Handle {
	if d < 0 {
		panic("sim: negative delay")
	}
	return k.AtArg(k.now+d, fn, arg)
}

// Every schedules fn at now+d, then every d thereafter, until the returned
// Ticker is stopped. fn receives the firing time.
func (k *Kernel) Every(d Duration, fn func(Time)) *Ticker {
	if d <= 0 {
		panic("sim: non-positive period")
	}
	t := &Ticker{k: k, period: d, fn: fn}
	t.schedule()
	return t
}

// Ticker is a repeating event. Stop cancels future firings.
type Ticker struct {
	k       *Kernel
	period  Duration
	fn      func(Time)
	h       Handle
	stopped bool
}

// tickerFire re-dispatches through the ticker so each firing schedules
// the next without a fresh closure (one *Ticker serves the whole
// lifetime).
func tickerFire(a any) { a.(*Ticker).fire() }

func (t *Ticker) schedule() {
	t.h = t.k.AtArg(t.k.now+t.period, tickerFire, t)
}

func (t *Ticker) fire() {
	if t.stopped {
		return
	}
	t.fn(t.k.now)
	if !t.stopped {
		t.schedule()
	}
}

// Stop cancels the ticker.
func (t *Ticker) Stop() {
	t.stopped = true
	t.h.Cancel()
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (k *Kernel) Step() bool {
	for len(k.heap) > 0 {
		e := k.heapPop()
		s := &k.slots[e.idx]
		if s.state == slotCancelled {
			k.release(e.idx) // reap
			continue
		}
		k.now = e.at
		fn, argFn, arg := s.fn, s.argFn, s.arg
		// Release before running: the callback may schedule new events
		// and immediately reuse this slot, and an in-flight event must
		// no longer be cancellable (gen bump invalidates its Handle).
		k.release(e.idx)
		k.nEvent++
		if e.at != k.lastTick {
			k.lastTick = e.at
			k.tickEvents = 0
		}
		k.tickEvents++
		if k.tickEvents > k.maxTickEvents {
			k.maxTickEvents = k.tickEvents
		}
		if argFn != nil {
			argFn(arg)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (k *Kernel) RunUntil(deadline Time) {
	for {
		at, ok := k.peek()
		if !ok || at > deadline {
			break
		}
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// RunFor advances the simulation by d.
func (k *Kernel) RunFor(d Duration) { k.RunUntil(k.now + d) }

// peek reports the timestamp of the next live event, reaping cancelled
// entries it skips over.
func (k *Kernel) peek() (Time, bool) {
	for len(k.heap) > 0 {
		e := k.heap[0]
		if k.slots[e.idx].state != slotCancelled {
			return e.at, true
		}
		k.heapPop()
		k.release(e.idx)
	}
	return 0, false
}

// --- 4-ary min-heap on (at, seq) ---
//
// A 4-ary layout halves the tree depth of a binary heap, trading a few
// extra comparisons per level for far fewer cache lines touched on
// sift-down — the dominant operation in a drain-heavy event loop.

const heapArity = 4

func (k *Kernel) heapPush(e heapEntry) {
	k.heap = append(k.heap, e)
	k.siftUp(len(k.heap) - 1)
}

func (k *Kernel) heapPop() heapEntry {
	h := k.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = heapEntry{}
	k.heap = h[:n]
	if n > 1 {
		k.siftDown(0)
	}
	return top
}

func (k *Kernel) siftUp(i int) {
	h := k.heap
	e := h[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if !e.less(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
}

func (k *Kernel) siftDown(i int) {
	h := k.heap
	n := len(h)
	e := h[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		last := first + heapArity
		if last > n {
			last = n
		}
		min := first
		for c := first + 1; c < last; c++ {
			if h[c].less(h[min]) {
				min = c
			}
		}
		if !h[min].less(e) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = e
}
