package sim

import (
	"reflect"
	"testing"
)

// TestProvenanceParentChain checks that events scheduled from inside an
// event handler carry the handler's seq as parent, while events
// scheduled from setup code are roots.
func TestProvenanceParentChain(t *testing.T) {
	k := NewKernel()
	var recs []ProvRecord
	k.SetProvenance(func(r ProvRecord) { recs = append(recs, r) })

	k.After(10, func() {
		k.After(5, func() {})
		k.After(7, func() {})
	})
	k.Run()

	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	root := recs[0]
	if root.Parent != NoProvParent {
		t.Errorf("setup event parent = %d, want NoProvParent", root.Parent)
	}
	if root.At != 10 {
		t.Errorf("root at = %v, want 10", root.At)
	}
	for i, r := range recs[1:] {
		if r.Parent != root.Seq {
			t.Errorf("child %d parent = %d, want %d", i, r.Parent, root.Seq)
		}
	}
	if recs[1].At != 15 || recs[2].At != 17 {
		t.Errorf("child times = %v, %v, want 15, 17", recs[1].At, recs[2].At)
	}
}

// TestProvenanceSeqOrder checks records arrive in strictly increasing
// seq order and match the kernel's serial sequence numbering.
func TestProvenanceSeqOrder(t *testing.T) {
	k := NewKernel()
	var seqs []uint64
	k.SetProvenance(func(r ProvRecord) { seqs = append(seqs, r.Seq) })
	for i := 0; i < 5; i++ {
		k.After(Duration(i+1), func() { k.After(1, func() {}) })
	}
	k.Run()
	if len(seqs) != 10 {
		t.Fatalf("got %d records, want 10", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("seqs not strictly increasing: %v", seqs)
		}
	}
}

// TestProvenanceParentResetAfterStep checks that scheduling between
// kernel steps (driver code) yields roots again after a step ran.
func TestProvenanceParentResetAfterStep(t *testing.T) {
	k := NewKernel()
	var recs []ProvRecord
	k.SetProvenance(func(r ProvRecord) { recs = append(recs, r) })
	k.After(1, func() {})
	k.Step()
	k.After(1, func() {}) // driver-scheduled: must be a root
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[1].Parent != NoProvParent {
		t.Errorf("driver-scheduled event parent = %d, want NoProvParent", recs[1].Parent)
	}
}

// TestProvenanceTag checks SetProvTag stamps subsequent schedule calls.
func TestProvenanceTag(t *testing.T) {
	k := NewKernel()
	var tags []int32
	k.SetProvenance(func(r ProvRecord) { tags = append(tags, r.Tag) })
	k.SetProvTag(7)
	k.After(1, func() {})
	k.SetProvTag(0)
	k.After(2, func() {})
	k.Run()
	if len(tags) != 2 || tags[0] != 7 || tags[1] != 0 {
		t.Fatalf("tags = %v, want [7 0]", tags)
	}
}

// TestProvenanceDeterministic runs the same workload twice and expects
// identical record streams (the foundation of the byte-identical trace
// guarantee).
func TestProvenanceDeterministic(t *testing.T) {
	run := func() []ProvRecord {
		k := NewKernel()
		var recs []ProvRecord
		k.SetProvenance(func(r ProvRecord) { recs = append(recs, r) })
		var tick func()
		n := 0
		tick = func() {
			n++
			if n < 20 {
				k.After(3, tick)
				if n%4 == 0 {
					k.AfterArg(1, func(any) {}, nil)
				}
			}
		}
		k.After(1, tick)
		k.Run()
		return recs
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("provenance records differ between identical runs")
	}
}

// TestCallbackPC prefers the argument-carrying callback and tolerates
// nils.
func TestCallbackPC(t *testing.T) {
	fn := func() {}
	argFn := func(any) {}
	if CallbackPC(fn, argFn) != CallbackPC(nil, argFn) {
		t.Error("argFn should win when both are set")
	}
	if CallbackPC(fn, nil) == 0 {
		t.Error("plain callback PC should be nonzero")
	}
	if CallbackPC(nil, nil) != 0 {
		t.Error("no callbacks should yield 0")
	}
}

// BenchmarkScheduleNoProvenance guards the disabled-hook cost: the
// steady-state schedule path must stay allocation-free.
func BenchmarkScheduleNoProvenance(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(1, fn)
		k.Step()
	}
}
