// Package pcap reads and writes classic libpcap capture files (the format
// produced by tcpdump and by Patchwork's DPDK writer). Both microsecond-
// and nanosecond-resolution variants are supported. The implementation is
// streaming: records are processed one at a time with a reusable buffer,
// so multi-gigabyte captures do not need to fit in memory.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic numbers for the classic pcap format (little-endian writers).
const (
	MagicMicroseconds = 0xA1B2C3D4
	MagicNanoseconds  = 0xA1B23C4D
)

// LinkTypeEthernet is the only link type Patchwork produces.
const LinkTypeEthernet = 1

const (
	fileHeaderLen   = 24
	recordHeaderLen = 16
	// MaxSnapLen is the conventional maximum snap length.
	MaxSnapLen = 262144
)

// ErrBadMagic is returned when a file does not start with a known pcap
// magic number.
var ErrBadMagic = errors.New("pcap: bad magic number")

// FileHeader describes a capture file.
type FileHeader struct {
	// Nanosecond is true for nanosecond-resolution timestamp files.
	Nanosecond bool
	// SnapLen is the maximum stored length of each record.
	SnapLen uint32
	// LinkType is the data link type (LinkTypeEthernet).
	LinkType uint32
}

// Record is one captured frame.
type Record struct {
	// TimestampNanos is the capture time in nanoseconds since the epoch
	// (virtual time in this repository's simulations).
	TimestampNanos int64
	// OriginalLength is the frame's length on the wire.
	OriginalLength int
	// Data holds the stored (possibly truncated) bytes. For Reader, the
	// slice is only valid until the next Next call.
	Data []byte
}

// Writer writes pcap records to an underlying io.Writer. It buffers
// internally; call Flush before closing the destination.
type Writer struct {
	w       *bufio.Writer
	hdr     FileHeader
	scratch [recordHeaderLen]byte
	// Records and Bytes count what has been written (stored bytes, not
	// original lengths).
	Records int64
	Bytes   int64
}

// NewWriter writes a file header and returns a Writer. A zero SnapLen
// defaults to MaxSnapLen.
func NewWriter(w io.Writer, hdr FileHeader) (*Writer, error) {
	if hdr.SnapLen == 0 {
		hdr.SnapLen = MaxSnapLen
	}
	if hdr.LinkType == 0 {
		hdr.LinkType = LinkTypeEthernet
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var fh [fileHeaderLen]byte
	magic := uint32(MagicMicroseconds)
	if hdr.Nanosecond {
		magic = MagicNanoseconds
	}
	binary.LittleEndian.PutUint32(fh[0:4], magic)
	binary.LittleEndian.PutUint16(fh[4:6], 2) // version 2.4
	binary.LittleEndian.PutUint16(fh[6:8], 4)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(fh[16:20], hdr.SnapLen)
	binary.LittleEndian.PutUint32(fh[20:24], hdr.LinkType)
	if _, err := bw.Write(fh[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing file header: %w", err)
	}
	return &Writer{w: bw, hdr: hdr}, nil
}

// WriteRecord writes one frame, truncating to the file's snap length.
// originalLen is the frame's on-wire length; pass len(data) when the frame
// is untruncated.
func (w *Writer) WriteRecord(tsNanos int64, data []byte, originalLen int) error {
	if originalLen < len(data) {
		originalLen = len(data)
	}
	stored := data
	if uint32(len(stored)) > w.hdr.SnapLen {
		stored = stored[:w.hdr.SnapLen]
	}
	sec := tsNanos / 1e9
	frac := tsNanos % 1e9
	if !w.hdr.Nanosecond {
		frac /= 1000
	}
	binary.LittleEndian.PutUint32(w.scratch[0:4], uint32(sec))
	binary.LittleEndian.PutUint32(w.scratch[4:8], uint32(frac))
	binary.LittleEndian.PutUint32(w.scratch[8:12], uint32(len(stored)))
	binary.LittleEndian.PutUint32(w.scratch[12:16], uint32(originalLen))
	if _, err := w.w.Write(w.scratch[:]); err != nil {
		return fmt.Errorf("pcap: writing record header: %w", err)
	}
	if _, err := w.w.Write(stored); err != nil {
		return fmt.Errorf("pcap: writing record data: %w", err)
	}
	w.Records++
	w.Bytes += int64(len(stored))
	return nil
}

// Flush writes buffered data to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Stream is a sequential source of capture records: Next returns the
// next record or io.EOF, and the returned record's Data is only valid
// until the following call. *Reader is the file-backed implementation;
// the analysis pipeline consumes Streams so synthesized or replayed
// corpora can feed it without materializing [][]byte.
type Stream interface {
	Next() (*Record, error)
}

// ForEachStream iterates a Stream to io.EOF, stopping early on the
// first other error (returned) or callback error.
func ForEachStream(s Stream, fn func(*Record) error) error {
	for {
		rec, err := s.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// Reader reads pcap records sequentially.
type Reader struct {
	r      *bufio.Reader
	hdr    FileHeader
	buf    []byte
	rec    Record
	torn   bool
	closed bool
}

// NewReader parses the file header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var fh [fileHeaderLen]byte
	if _, err := io.ReadFull(br, fh[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading file header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(fh[0:4])
	var nano bool
	switch magic {
	case MagicMicroseconds:
	case MagicNanoseconds:
		nano = true
	default:
		return nil, fmt.Errorf("%w: 0x%08x", ErrBadMagic, magic)
	}
	hdr := FileHeader{
		Nanosecond: nano,
		SnapLen:    binary.LittleEndian.Uint32(fh[16:20]),
		LinkType:   binary.LittleEndian.Uint32(fh[20:24]),
	}
	return &Reader{r: br, hdr: hdr}, nil
}

// Header returns the file header.
func (r *Reader) Header() FileHeader { return r.hdr }

// Torn reports whether the file ended mid-record: the final record's
// header or data was cut short, as happens when a capture process dies
// mid-write. Mirroring the campaign journal's torn-tail tolerance, the
// partial record is dropped and Next reports a clean io.EOF; Torn lets
// callers that care (integrity audits) distinguish the two endings.
func (r *Reader) Torn() bool { return r.torn }

// Next returns the next record, or io.EOF at end of file (including a
// torn final record — see Torn). The returned record's Data slice is
// reused by subsequent calls.
func (r *Reader) Next() (*Record, error) {
	var rh [recordHeaderLen]byte
	if _, err := io.ReadFull(r.r, rh[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			// Partial record header at end of file: torn tail.
			r.torn = true
			return nil, io.EOF
		}
		return nil, fmt.Errorf("pcap: reading record header: %w", err)
	}
	sec := binary.LittleEndian.Uint32(rh[0:4])
	frac := binary.LittleEndian.Uint32(rh[4:8])
	incl := binary.LittleEndian.Uint32(rh[8:12])
	orig := binary.LittleEndian.Uint32(rh[12:16])
	if incl > MaxSnapLen {
		return nil, fmt.Errorf("pcap: record length %d exceeds maximum", incl)
	}
	if r.hdr.SnapLen != 0 && incl > r.hdr.SnapLen {
		return nil, fmt.Errorf("pcap: record length %d exceeds snap length %d", incl, r.hdr.SnapLen)
	}
	if cap(r.buf) < int(incl) {
		r.buf = make([]byte, incl)
	}
	r.buf = r.buf[:incl]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// Partial record data at end of file: torn tail.
			r.torn = true
			return nil, io.EOF
		}
		return nil, fmt.Errorf("pcap: reading %d record bytes: %w", incl, err)
	}
	ts := int64(sec) * 1e9
	if r.hdr.Nanosecond {
		ts += int64(frac)
	} else {
		ts += int64(frac) * 1000
	}
	r.rec = Record{TimestampNanos: ts, OriginalLength: int(orig), Data: r.buf}
	return &r.rec, nil
}

// ForEach iterates all remaining records, stopping on the first error
// other than io.EOF.
func (r *Reader) ForEach(fn func(*Record) error) error {
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}
