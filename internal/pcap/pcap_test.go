package pcap

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, hdr FileHeader, recs []Record) []Record {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, hdr)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, r := range recs {
		if err := w.WriteRecord(r.TimestampNanos, r.Data, r.OriginalLength); err != nil {
			t.Fatalf("WriteRecord: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var out []Record
	err = rd.ForEach(func(r *Record) error {
		cp := *r
		cp.Data = append([]byte(nil), r.Data...)
		out = append(out, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	return out
}

func TestRoundTripMicro(t *testing.T) {
	recs := []Record{
		{TimestampNanos: 1_000_000_000, OriginalLength: 1514, Data: bytes.Repeat([]byte{0xAA}, 200)},
		{TimestampNanos: 1_000_123_456_000, OriginalLength: 64, Data: bytes.Repeat([]byte{0xBB}, 64)},
	}
	out := roundTrip(t, FileHeader{SnapLen: 200}, recs)
	if len(out) != 2 {
		t.Fatalf("got %d records", len(out))
	}
	if out[0].OriginalLength != 1514 || len(out[0].Data) != 200 {
		t.Errorf("rec0 = %d/%d", out[0].OriginalLength, len(out[0].Data))
	}
	// Microsecond file: ns rounded down to microsecond.
	if out[1].TimestampNanos != 1_000_123_456_000 {
		t.Errorf("ts = %d", out[1].TimestampNanos)
	}
}

func TestRoundTripNano(t *testing.T) {
	recs := []Record{{TimestampNanos: 123_456_789_123, OriginalLength: 100, Data: make([]byte, 100)}}
	out := roundTrip(t, FileHeader{Nanosecond: true}, recs)
	if out[0].TimestampNanos != 123_456_789_123 {
		t.Errorf("nano ts = %d", out[0].TimestampNanos)
	}
}

func TestMicroTimestampTruncation(t *testing.T) {
	recs := []Record{{TimestampNanos: 5_000_000_999, OriginalLength: 10, Data: make([]byte, 10)}}
	out := roundTrip(t, FileHeader{}, recs)
	if out[0].TimestampNanos != 5_000_000_000 {
		t.Errorf("micro file should truncate sub-microsecond: %d", out[0].TimestampNanos)
	}
}

func TestSnapLenTruncates(t *testing.T) {
	data := bytes.Repeat([]byte{1}, 1500)
	recs := []Record{{TimestampNanos: 0, OriginalLength: 1500, Data: data}}
	out := roundTrip(t, FileHeader{SnapLen: 64}, recs)
	if len(out[0].Data) != 64 {
		t.Errorf("stored = %d bytes, want 64", len(out[0].Data))
	}
	if out[0].OriginalLength != 1500 {
		t.Errorf("orig = %d, want 1500", out[0].OriginalLength)
	}
}

func TestDefaultSnapLen(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, FileHeader{})
	if err != nil {
		t.Fatal(err)
	}
	_ = w.Flush()
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Header().SnapLen != MaxSnapLen {
		t.Errorf("snaplen = %d", rd.Header().SnapLen)
	}
	if rd.Header().LinkType != LinkTypeEthernet {
		t.Errorf("linktype = %d", rd.Header().LinkType)
	}
}

func TestBadMagic(t *testing.T) {
	data := make([]byte, 24)
	copy(data, []byte{0xDE, 0xAD, 0xBE, 0xEF})
	_, err := NewReader(bytes.NewReader(data))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestShortFileHeader(t *testing.T) {
	_, err := NewReader(bytes.NewReader(make([]byte, 10)))
	if err == nil {
		t.Error("short header should fail")
	}
}

func TestTruncatedRecordBody(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, FileHeader{})
	_ = w.WriteRecord(0, make([]byte, 100), 100)
	_ = w.Flush()
	// Chop off the last 10 bytes: the partial record is dropped like a
	// torn journal tail — clean io.EOF with Torn reporting the cut.
	data := buf.Bytes()[:buf.Len()-10]
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err = rd.Next(); err != io.EOF {
		t.Errorf("truncated body: got %v, want io.EOF", err)
	}
	if !rd.Torn() {
		t.Error("Torn() = false after truncated body")
	}
}

func TestEOFAfterLastRecord(t *testing.T) {
	out := roundTrip(t, FileHeader{}, []Record{{TimestampNanos: 1, OriginalLength: 4, Data: []byte{1, 2, 3, 4}}})
	if len(out) != 1 {
		t.Fatalf("records = %d", len(out))
	}
}

func TestWriterCounters(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, FileHeader{SnapLen: 50})
	_ = w.WriteRecord(0, make([]byte, 100), 100)
	_ = w.WriteRecord(0, make([]byte, 20), 20)
	if w.Records != 2 {
		t.Errorf("Records = %d", w.Records)
	}
	if w.Bytes != 70 { // 50 truncated + 20
		t.Errorf("Bytes = %d", w.Bytes)
	}
}

func TestOriginalLenAtLeastStored(t *testing.T) {
	// Passing originalLen < len(data) is corrected.
	out := roundTrip(t, FileHeader{}, []Record{{TimestampNanos: 0, OriginalLength: 1, Data: make([]byte, 42)}})
	if out[0].OriginalLength != 42 {
		t.Errorf("orig = %d, want 42", out[0].OriginalLength)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(ts int64, sizes []uint16, nano bool) bool {
		if ts < 0 {
			ts = -ts
		}
		ts %= 1 << 60
		var buf bytes.Buffer
		w, err := NewWriter(&buf, FileHeader{Nanosecond: nano})
		if err != nil {
			return false
		}
		var want []int
		for _, s := range sizes {
			n := int(s) % 9000
			want = append(want, n)
			if err := w.WriteRecord(ts, make([]byte, n), n); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		rd, err := NewReader(&buf)
		if err != nil {
			return false
		}
		i := 0
		err = rd.ForEach(func(r *Record) error {
			if len(r.Data) != want[i] || r.OriginalLength != want[i] {
				return errors.New("size mismatch")
			}
			i++
			return nil
		})
		return err == nil && i == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWriteRecord(b *testing.B) {
	w, _ := NewWriter(io.Discard, FileHeader{SnapLen: 200})
	data := make([]byte, 200)
	b.SetBytes(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.WriteRecord(int64(i), data, 1514)
	}
}

// writeFile builds a complete pcap file in memory.
func writeFile(t *testing.T, hdr FileHeader, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, hdr)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, r := range recs {
		if err := w.WriteRecord(r.TimestampNanos, r.Data, r.OriginalLength); err != nil {
			t.Fatalf("WriteRecord: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

// TestTornTail mirrors the campaign journal's torn-tail tolerance: a
// file whose final record was cut mid-write (in its header or in its
// data) yields every complete record, then a clean io.EOF with Torn set.
func TestTornTail(t *testing.T) {
	recs := []Record{
		{TimestampNanos: 1e9, OriginalLength: 120, Data: bytes.Repeat([]byte{0x11}, 120)},
		{TimestampNanos: 2e9, OriginalLength: 90, Data: bytes.Repeat([]byte{0x22}, 90)},
		{TimestampNanos: 3e9, OriginalLength: 150, Data: bytes.Repeat([]byte{0x33}, 150)},
	}
	full := writeFile(t, FileHeader{SnapLen: 200}, recs)
	lastLen := recordHeaderLen + 150
	cuts := map[string]int{
		"mid-data":   len(full) - 37,                            // last record's bytes cut short
		"mid-header": len(full) - lastLen + 7,                   // partial record header
		"no-data":    len(full) - 150,                           // header complete, zero data bytes
		"one-byte":   len(full) - lastLen + recordHeaderLen + 1, // one data byte
	}
	for name, cut := range cuts {
		rd, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("%s: NewReader: %v", name, err)
		}
		n := 0
		err = rd.ForEach(func(r *Record) error { n++; return nil })
		if err != nil {
			t.Fatalf("%s: ForEach returned %v, want clean stop", name, err)
		}
		if n != 2 {
			t.Errorf("%s: read %d complete records, want 2", name, n)
		}
		if !rd.Torn() {
			t.Errorf("%s: Torn() = false, want true", name)
		}
	}
	// A cleanly ended file must not report a torn tail.
	rd, err := NewReader(bytes.NewReader(full))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	n := 0
	if err := rd.ForEach(func(*Record) error { n++; return nil }); err != nil || n != 3 {
		t.Fatalf("clean file: n=%d err=%v", n, err)
	}
	if rd.Torn() {
		t.Errorf("clean file: Torn() = true, want false")
	}
}

// TestRejectOverSnapLen rejects records claiming more captured bytes
// than the file's declared snap length — corrupt headers must not make
// the reader allocate or trust bogus lengths.
func TestRejectOverSnapLen(t *testing.T) {
	full := writeFile(t, FileHeader{SnapLen: 128}, []Record{
		{TimestampNanos: 1e9, OriginalLength: 100, Data: bytes.Repeat([]byte{0x44}, 100)},
	})
	// Forge the record's included-length field to exceed the snaplen.
	inclOff := fileHeaderLen + 8
	corrupted := append([]byte(nil), full...)
	corrupted[inclOff] = 200 // 200 > snaplen 128
	rd, err := NewReader(bytes.NewReader(corrupted))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if _, err := rd.Next(); err == nil || err == io.EOF {
		t.Fatalf("Next on over-snaplen record: err=%v, want rejection", err)
	}
	if rd.Torn() {
		t.Errorf("rejection must not report a torn tail")
	}
}

// TestStreamInterface pins *Reader to the Stream contract.
func TestStreamInterface(t *testing.T) {
	full := writeFile(t, FileHeader{SnapLen: 64}, []Record{
		{TimestampNanos: 5e9, OriginalLength: 60, Data: bytes.Repeat([]byte{0x55}, 60)},
	})
	rd, err := NewReader(bytes.NewReader(full))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var s Stream = rd
	n := 0
	if err := ForEachStream(s, func(r *Record) error { n++; return nil }); err != nil || n != 1 {
		t.Fatalf("ForEachStream: n=%d err=%v", n, err)
	}
}
