// Package repro's top-level benchmarks regenerate every table and figure
// of the paper as testing.B benchmarks: `go test -bench=. -benchmem`
// reruns the whole evaluation. Each benchmark reports the experiment's
// headline quantities as custom metrics, so benchmark output doubles as
// the paper-vs-measured record.
package repro

import (
	"net/netip"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/capture"
	"repro/internal/experiments"
	"repro/internal/hostsim"
	"repro/internal/lanes"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, id string) *experiments.Result {
	b.Helper()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id, 1)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		last = r
	}
	return last
}

// metric parses a numeric cell and reports it under the given unit.
func metric(b *testing.B, val string, unit string) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(val, "%"), 64)
	if err == nil {
		b.ReportMetric(v, unit)
	}
}

// --- Section 5 study figures ---

func BenchmarkFig2PortDistribution(b *testing.B) {
	r := benchExperiment(b, "fig2")
	b.ReportMetric(float64(len(r.Rows)), "sites")
}

func BenchmarkFig3SitesPerSlice(b *testing.B) {
	r := benchExperiment(b, "fig3")
	metric(b, r.Rows[0][2], "%single-site")
}

func BenchmarkFig4SliceLifetimes(b *testing.B) {
	r := benchExperiment(b, "fig4")
	for _, row := range r.Rows {
		if row[0] == "24h" {
			metric(b, row[1], "frac<=24h")
		}
	}
}

func BenchmarkFig5ConcurrentSlices(b *testing.B) {
	r := benchExperiment(b, "fig5")
	metric(b, r.Rows[0][1], "mean-slices")
	metric(b, r.Rows[2][1], "max-slices")
}

func BenchmarkFig6WeeklyUtilization(b *testing.B) {
	r := benchExperiment(b, "fig6")
	b.ReportMetric(float64(len(r.Rows)), "weeks")
}

func BenchmarkPortUtilization(b *testing.B) {
	r := benchExperiment(b, "portutil")
	for _, row := range r.Rows {
		if row[0] == "p50" {
			metric(b, row[1], "%median-util")
		}
	}
}

// --- Section 8.1 performance experiments ---

func BenchmarkTcpdumpCeiling(b *testing.B) {
	r := benchExperiment(b, "tcpdump")
	for _, row := range r.Rows {
		if row[0] == "11Gbps" {
			metric(b, row[1], "%loss@11G")
		}
	}
}

func BenchmarkTable1DPDK200B(b *testing.B) {
	r := benchExperiment(b, "table1")
	metric(b, r.Rows[0][3], "cores-1514B@100G")
}

func BenchmarkTable2DPDK64B(b *testing.B) {
	r := benchExperiment(b, "table2")
	metric(b, r.Rows[0][3], "cores-1514B@100G")
}

func BenchmarkFig14StorageBottleneck(b *testing.B) {
	r := benchExperiment(b, "fig14")
	for _, row := range r.Rows {
		if row[0] == "21" {
			metric(b, row[1], "ms-10:20@21%")
		}
	}
}

// --- Section 8.1.1 deployment behavior ---

func BenchmarkFig10RunOutcomes(b *testing.B) {
	r := benchExperiment(b, "fig10")
	metric(b, r.Rows[0][2], "%success")
}

// --- Section 8.2 traffic profile ---

func BenchmarkFig11HeaderDiversity(b *testing.B) {
	benchExperiment(b, "fig11")
}

func BenchmarkFig12HeaderOccurrence(b *testing.B) {
	r := benchExperiment(b, "fig12")
	for _, row := range r.Rows {
		if row[0] == "IPv6" {
			metric(b, row[1], "%IPv6")
		}
	}
}

func BenchmarkFig13FlowsPerSample(b *testing.B) {
	benchExperiment(b, "fig13")
}

func BenchmarkFig15FrameSizesPerSite(b *testing.B) {
	benchExperiment(b, "fig15")
}

func BenchmarkFrameSizeAggregate(b *testing.B) {
	r := benchExperiment(b, "framesizes")
	for _, row := range r.Rows {
		if row[0] == "1519-2047" {
			metric(b, row[2], "%jumbo-class")
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---

func BenchmarkAblationPortCycling(b *testing.B) {
	benchExperiment(b, "ablation-cycling")
}

func BenchmarkAblationTruncation(b *testing.B) {
	benchExperiment(b, "ablation-truncation")
}

func BenchmarkAblationDirtyThresholds(b *testing.B) {
	benchExperiment(b, "ablation-thresholds")
}

func BenchmarkAblationMirrorDirection(b *testing.B) {
	benchExperiment(b, "ablation-mirror-direction")
}

func BenchmarkAblationCaptureMethods(b *testing.B) {
	benchExperiment(b, "ablation-methods")
}

func BenchmarkAblationNetFlowBaseline(b *testing.B) {
	r := benchExperiment(b, "ablation-netflow")
	nf, err1 := strconv.Atoi(r.Rows[0][1])
	pw, err2 := strconv.Atoi(r.Rows[0][2])
	if err1 == nil && err2 == nil && nf > 0 {
		b.ReportMetric(float64(pw)/float64(nf), "x-flow-undercount")
	}
}

// --- Micro-benchmarks of the hot paths ---

// BenchmarkWireFastPath measures the allocation-free decoding path used
// by the capture engine.
func BenchmarkWireFastPath(b *testing.B) {
	var (
		eth  wire.Ethernet
		dot  wire.Dot1Q
		mpls wire.MPLS
		cw   wire.PWControlWord
		ip4  wire.IPv4
		tcp  wire.TCP
	)
	parser := wire.NewDecodingLayerParser(wire.LayerTypeEthernet, &eth, &dot, &mpls, &cw, &ip4, &tcp)
	frame := buildBenchFrame(b)
	var decoded []wire.LayerType
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = parser.DecodeLayers(frame, &decoded)
	}
}

func buildBenchFrame(b *testing.B) []byte {
	b.Helper()
	buf := wire.NewSerializeBuffer()
	pay := wire.Payload(make([]byte, 1400))
	err := wire.SerializeLayers(buf, wire.SerializeOptions{FixLengths: true},
		&wire.Ethernet{EthernetType: wire.EthernetTypeDot1Q},
		&wire.Dot1Q{VLANID: 2101, EthernetType: wire.EthernetTypeMPLSUnicast},
		&wire.MPLS{Label: 1000, StackBottom: true, TTL: 64},
		&wire.PWControlWord{},
		&wire.Ethernet{EthernetType: wire.EthernetTypeIPv4},
		&wire.IPv4{TTL: 64, Protocol: wire.IPProtocolTCP,
			SrcIP: netip.MustParseAddr("10.0.0.1"), DstIP: netip.MustParseAddr("10.0.0.2")},
		&wire.TCP{SrcPort: 1, DstPort: 5001, DataOffset: 5},
		&pay)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]byte, len(buf.Bytes()))
	copy(out, buf.Bytes())
	return out
}

// BenchmarkCaptureEngine measures the DPDK-model engine's per-frame cost.
// The allocs/frame metric must stay ~0: completion records pool in the
// engine and events pool in the kernel arena, so the steady-state frame
// path never touches the heap (asserted by TestDeliverFrameAllocFree in
// internal/capture).
func BenchmarkCaptureEngine(b *testing.B) {
	k := sim.NewKernel()
	e, err := capture.NewEngine(k, capture.Config{Method: capture.MethodDPDK, SnapLen: 200, Cores: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	st := capture.OfferLoad(k, e, 1514, 10*units.Gbps, sim.Duration(b.N)*sim.Microsecond)
	runtime.ReadMemStats(&m1)
	if st.Received > 0 {
		b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/float64(st.Received), "allocs/frame")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(st.Received), "ns/frame")
	}
}

// lanedBenchLoad seeds a synthetic dataplane across lanesN shards: each
// shard runs a self-rescheduling step that fans out short local events,
// every event doing a slice of deterministic per-frame work. sched[i]
// is the scheduler for shard i (all the kernel for the serial baseline,
// per-shard lanes otherwise). Returns per-shard event counters.
func lanedBenchLoad(scheds []sim.Scheduler, horizon sim.Time) []uint64 {
	counts := make([]uint64, len(scheds))
	for i, s := range scheds {
		i, s := i, s
		var h uint64 = 14695981039346656037
		work := func() {
			counts[i]++
			// Stand-in for per-frame dataplane work (parse + hash).
			for b := 0; b < 64; b++ {
				h = (h ^ uint64(b)) * 1099511628211
			}
		}
		var step func()
		step = func() {
			now := s.Now()
			if now >= horizon {
				return
			}
			work()
			for j := 0; j < 8; j++ {
				s.After(sim.Duration(1+j)*sim.Millisecond, work)
			}
			s.After(5*sim.Millisecond, step)
		}
		s.At(sim.Time(i+1)*sim.Millisecond, step)
	}
	return counts
}

// BenchmarkLanedWorld compares the sharded lane executor against the
// serial kernel on an identical synthetic dataplane. The laned/serial
// ratio is hardware-dependent (speedup needs real cores; on one core
// the window barrier is pure overhead), so bench.sh records it rather
// than gating on it; the determinism gates are what CI enforces.
func BenchmarkLanedWorld(b *testing.B) {
	const lanesN = 4
	const horizon = 500 * sim.Millisecond
	run := func(b *testing.B, workers int) {
		b.ReportAllocs()
		var events uint64
		for i := 0; i < b.N; i++ {
			k := sim.NewKernel()
			scheds := make([]sim.Scheduler, lanesN)
			if workers == 0 { // serial baseline
				for j := range scheds {
					scheds[j] = k
				}
				counts := lanedBenchLoad(scheds, horizon)
				k.Run()
				events = 0
				for _, c := range counts {
					events += c
				}
			} else {
				w := lanes.NewWorld(k, lanes.Config{Lanes: lanesN, Workers: workers})
				for j := range scheds {
					scheds[j] = w.Lane(j + 1)
				}
				counts := lanedBenchLoad(scheds, horizon)
				w.Run()
				w.Close()
				events = 0
				for _, c := range counts {
					events += c
				}
			}
		}
		b.ReportMetric(float64(events), "events/op")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events)/float64(b.N), "ns/event")
	}
	b.Run("serial", func(b *testing.B) { run(b, 0) })
	b.Run("laned-w1", func(b *testing.B) { run(b, 1) })
	b.Run("laned-w2", func(b *testing.B) { run(b, 2) })
	b.Run("laned-w4", func(b *testing.B) { run(b, 4) })
}

// BenchmarkHostWritev measures the page-cache model.
func BenchmarkHostWritev(b *testing.B) {
	h, err := hostsim.New(hostsim.Config{DirtyBackgroundRatio: 60, DirtyRatio: 80})
	if err != nil {
		b.Fatal(err)
	}
	var now sim.Time
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lat := h.Writev(now, 128*216)
		now += lat + 3*sim.Microsecond
	}
}
