package repro

import (
	"bytes"
	"testing"

	"repro/internal/analysis"
	patchwork "repro/internal/core"
	"repro/internal/pcap"
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/telemetry"
	"repro/internal/testbed"
	"repro/internal/trafficgen"
	"repro/internal/units"
	"repro/internal/wire"
)

// TestFullPipeline drives the complete system end to end: a federation
// with a wired backbone, synthetic workloads, a coordinated profiling
// run, bundle gathering, and the offline analysis phase — asserting the
// paper's qualitative findings along the way.
func TestFullPipeline(t *testing.T) {
	const seed = 4242
	k := sim.NewKernel()
	full := testbed.DefaultFederation(k, seed)
	specs := make([]testbed.SiteSpec, 4)
	for i := range specs {
		specs[i] = full.Sites()[i].Spec
	}
	k = sim.NewKernel()
	fed, err := testbed.NewFederation(k, specs)
	if err != nil {
		t.Fatal(err)
	}
	links := fed.WireBackbone()
	if len(links) == 0 {
		t.Fatal("no backbone links")
	}

	store := telemetry.NewStore()
	poller := telemetry.NewPoller(k, store, 15*sim.Second)
	profiles := trafficgen.MakeSiteProfiles(seed, len(fed.Sites()))
	var drivers []*patchwork.TrafficDriver
	for i, s := range fed.Sites() {
		poller.Watch(s.Switch)
		gen := trafficgen.NewGenerator(profiles[i], seed+uint64(i))
		d := patchwork.NewTrafficDriver(k, s, gen, nil)
		d.WindowFrames = 150
		drivers = append(drivers, d)
		d.Start()
	}
	// Cross-site traffic over the backbone (the multi-site slices of
	// Fig. 3), so uplink ports carry load too.
	xgen := trafficgen.NewGenerator(profiles[0], seed+99)
	xflow := xgen.NewFlow()
	link := links[0]
	xtick := k.Every(200*sim.Millisecond, func(sim.Time) {
		data, err := xgen.BuildFrame(&xflow, trafficgen.DirForward, 1600)
		if err != nil {
			return
		}
		_ = fed.TransitInterSite(link, link.A, switchsim.NewFrame(data))
	})
	poller.Start()

	cfg := patchwork.Config{
		Mode:            patchwork.AllExperiment,
		SampleDuration:  3 * sim.Second,
		SampleInterval:  6 * sim.Second,
		SamplesPerRun:   2,
		Runs:            3,
		InstancesWanted: 1,
		Seed:            seed,
	}
	coord, err := patchwork.NewCoordinator(fed, store, poller, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range drivers {
		d.Stop()
	}
	xtick.Stop()
	poller.Stop()

	if prof.SuccessRate() != 1 {
		for _, b := range prof.Bundles {
			t.Logf("%s: %v (%s)", b.Site, b.Outcome, b.FailureReason)
		}
		t.Fatalf("success rate = %v", prof.SuccessRate())
	}

	// Analysis phase over every bundle.
	var acaps []*analysis.Acap
	var all []analysis.Record
	for _, b := range prof.Bundles {
		pcaps, err := b.DecompressPcaps()
		if err != nil {
			t.Fatal(err)
		}
		if len(pcaps) == 0 {
			t.Fatalf("%s: no captures", b.Site)
		}
		for _, raw := range pcaps {
			rd, err := pcap.NewReader(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			a, err := analysis.Digest(b.Site, rd)
			if err != nil {
				t.Fatal(err)
			}
			acaps = append(acaps, a)
			all = append(all, a.Records...)
		}
	}
	if len(all) < 1000 {
		t.Fatalf("only %d frames captured end to end", len(all))
	}

	// Paper-shaped assertions on the analyzed profile.
	occ := analysis.HeaderOccurrence(all)
	if occ[wire.LayerTypeDot1Q] < 99 {
		t.Errorf("VLAN occurrence = %.1f%%", occ[wire.LayerTypeDot1Q])
	}
	if occ[wire.LayerTypeIPv4] < 50 {
		t.Errorf("IPv4 occurrence = %.1f%%", occ[wire.LayerTypeIPv4])
	}
	if occ[wire.LayerTypeIPv6] > 15 {
		t.Errorf("IPv6 occurrence = %.1f%%, should be minor", occ[wire.LayerTypeIPv6])
	}
	stats := analysis.HeaderStatsBySite(acaps)
	if len(stats) != 4 {
		t.Fatalf("sites analyzed = %d", len(stats))
	}
	for _, s := range stats {
		if s.MaxStackDepth < 4 || s.MaxStackDepth > 12 {
			t.Errorf("%s stack depth = %d", s.Site, s.MaxStackDepth)
		}
	}
	census := analysis.EncapsulationCensus(all)
	if len(census) < 3 {
		t.Errorf("encapsulation census too small: %v", census)
	}
	flows := analysis.AggregateFlows(acaps)
	if len(flows) < 10 {
		t.Errorf("flows aggregated = %d", len(flows))
	}
	// Heavy tail: the top flow must dwarf the median flow.
	if flows[0].Bytes < 10*flows[len(flows)/2].Bytes {
		t.Errorf("flow sizes not heavy-tailed: top=%d median=%d",
			flows[0].Bytes, flows[len(flows)/2].Bytes)
	}

	// The backbone link's uplink counters saw the cross-site traffic.
	up := fed.Site(link.A).Switch.Port(link.APort).Counters()
	if up.TxFrames == 0 {
		t.Error("uplink carried no cross-site frames")
	}
}

// TestAnonymizedBundleStillAnalyzes verifies the close-to-source
// anonymization path: frames anonymized before analysis keep their flow
// structure and protocol mix.
func TestAnonymizedBundleStillAnalyzes(t *testing.T) {
	gen := trafficgen.NewGenerator(trafficgen.MakeSiteProfiles(5, 1)[0], 5)
	frames, err := gen.Sample(trafficgen.SampleConfig{MaxFrames: 800, FlowCount: 60})
	if err != nil {
		t.Fatal(err)
	}
	anon := analysis.NewAnonymizer(0x5EC12E7)
	plain := &analysis.Acap{Site: "S"}
	masked := &analysis.Acap{Site: "S"}
	for _, tf := range frames {
		plain.Records = append(plain.Records, analysis.DigestFrame(int64(tf.At), tf.Data, len(tf.Data)))
		cp := append([]byte(nil), tf.Data...)
		anon.AnonymizeFrame(cp)
		masked.Records = append(masked.Records, analysis.DigestFrame(int64(tf.At), cp, len(cp)))
	}
	if got, want := analysis.FlowsInSample(masked), analysis.FlowsInSample(plain); got != want {
		t.Errorf("anonymization changed flow count: %d != %d", got, want)
	}
	po := analysis.HeaderOccurrence(plain.Records)
	mo := analysis.HeaderOccurrence(masked.Records)
	for _, lt := range []wire.LayerType{wire.LayerTypeIPv4, wire.LayerTypeTCP, wire.LayerTypeDot1Q} {
		if po[lt] != mo[lt] {
			t.Errorf("%v occurrence changed: %.2f -> %.2f", lt, po[lt], mo[lt])
		}
	}
}

// TestCaptureToAnalysisTruncationConsistency: the profiler's default
// 200-byte truncation keeps the full header stack decodable for the
// overwhelming majority of FABRIC-like traffic.
func TestCaptureToAnalysisTruncationConsistency(t *testing.T) {
	gen := trafficgen.NewGenerator(trafficgen.MakeSiteProfiles(9, 1)[0], 9)
	frames, err := gen.Sample(trafficgen.SampleConfig{MaxFrames: 1500, FlowCount: 100})
	if err != nil {
		t.Fatal(err)
	}
	a := &analysis.Acap{Site: "S"}
	for _, tf := range frames {
		stored := tf.Data
		if len(stored) > 200 {
			stored = stored[:200]
		}
		a.Records = append(a.Records, analysis.DigestFrame(int64(tf.At), stored, len(tf.Data)))
	}
	if share := analysis.TruncatedDecodeShare(a.Records); share > 0.01 {
		t.Errorf("truncated-decode share = %.3f, 200B should cover headers", share)
	}
}

// TestTelemetryMatchesCapture cross-checks substrates: bytes counted by
// switch telemetry on a mirrored port roughly match what the capture
// stored before truncation.
func TestTelemetryMatchesCapture(t *testing.T) {
	k := sim.NewKernel()
	fed, err := testbed.NewFederation(k, []testbed.SiteSpec{{
		Name: "X", Uplinks: 1, Downlinks: 4, DedicatedNICs: 1,
		Cores: 8, RAM: 64 * units.GB, Storage: units.TB,
	}})
	if err != nil {
		t.Fatal(err)
	}
	site := fed.Sites()[0]
	sess, err := site.Switch.StartMirror("P1", switchsim.DirRx, "P2")
	if err != nil {
		t.Fatal(err)
	}
	var delivered int64
	site.Switch.Port("P2").SetReceiver(switchsim.ReceiverFunc(func(_ sim.Time, f switchsim.Frame) {
		delivered += int64(f.Size)
	}))
	var offered int64
	tick := k.Every(10*sim.Millisecond, func(sim.Time) {
		f := switchsim.Frame{Size: 1500}
		offered += 1500
		_ = site.Switch.Transit("P1", switchsim.DirRx, f)
	})
	k.RunUntil(5 * sim.Second)
	tick.Stop()
	k.Run()
	counters := site.Switch.Port("P1").Counters()
	if int64(counters.RxBytes) != offered {
		t.Errorf("telemetry Rx = %d, offered %d", counters.RxBytes, offered)
	}
	if delivered != offered {
		t.Errorf("capture saw %d bytes, offered %d (drops: %d)", delivered, offered, sess.CloneDrops)
	}
}
